"""Catalog descriptors and their persistence.

Each relation and index is described by one descriptor, serialised as a
JSON entity inside a catalog-segment partition.  Every descriptor change
(create, partition added, checkpoint location installed) rewrites that
entity *through the transaction's change sink*, so catalog updates are
REDO-logged and recovered exactly like user data — which is what lets the
paper recover the catalogs first and everything else lazily.

The descriptor for a partition records its current checkpoint disk slot
(or ``None`` before the first checkpoint).  Residency is *not* stored
here: it is volatile state tracked by the segments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Protocol

from repro.catalog.schema import Schema
from repro.common.errors import CatalogError
from repro.common.types import EntityAddress, PartitionAddress, SegmentKind
from repro.storage.memory_manager import MemoryManager
from repro.storage.partition import ENTITY_HEADER_BYTES, Partition
from repro.storage.segment import Segment

CATALOG_SEGMENT_NAME = "__catalog__"


class EntitySink(Protocol):
    """Change notifications for catalog entity writes (implemented by the
    transaction context; ``None`` during bootstrap/recovery rebuilds)."""

    def entity_inserted(self, address: EntityAddress, data: bytes) -> None: ...

    def entity_updated(
        self, address: EntityAddress, before: bytes, after: bytes
    ) -> None: ...

    def entity_deleted(self, address: EntityAddress, before: bytes) -> None: ...

    def partition_allocated(self, partition: Partition) -> None: ...


def _address_to_json(address: EntityAddress | None) -> list | None:
    if address is None:
        return None
    return [address.segment, address.partition, address.offset]


def _address_from_json(data: list | None) -> EntityAddress | None:
    if data is None:
        return None
    return EntityAddress(*data)


@dataclass
class PartitionInfo:
    """Catalogued facts about one partition: its number within the segment
    and its current checkpoint image location (a disk slot)."""

    number: int
    checkpoint_slot: int | None = None

    def to_json(self) -> list:
        return [self.number, self.checkpoint_slot]

    @classmethod
    def from_json(cls, data: list) -> "PartitionInfo":
        return cls(data[0], data[1])


@dataclass
class RelationDescriptor:
    name: str
    segment_id: int
    schema: Schema
    primary_key: str
    index_names: list[str] = field(default_factory=list)
    partitions: dict[int, PartitionInfo] = field(default_factory=dict)
    #: Highest command sequence number whose effects are fully reflected
    #: in this relation's checkpoint images (docs/LOGGING.md).  Updated
    #: atomically for a whole declared closure by settlement sweeps;
    #: commands at or below the watermark are settled and never replayed.
    command_watermark: int = 0
    #: Catalog entity holding this descriptor (assigned at store time).
    entity: EntityAddress | None = None

    def partition_addresses(self) -> list[PartitionAddress]:
        return [
            PartitionAddress(self.segment_id, number)
            for number in sorted(self.partitions)
        ]

    def encode(self) -> bytes:
        return json.dumps(
            {
                "kind": "relation",
                "name": self.name,
                "segment": self.segment_id,
                "schema": self.schema.to_json(),
                "primary_key": self.primary_key,
                "indexes": self.index_names,
                "partitions": [p.to_json() for p in self.partitions.values()],
                "command_watermark": self.command_watermark,
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def decode(cls, data: bytes, entity: EntityAddress) -> "RelationDescriptor":
        doc = json.loads(data.decode("utf-8"))
        partitions = {
            info[0]: PartitionInfo.from_json(info) for info in doc["partitions"]
        }
        return cls(
            name=doc["name"],
            segment_id=doc["segment"],
            schema=Schema.from_json(doc["schema"]),
            primary_key=doc["primary_key"],
            index_names=list(doc["indexes"]),
            partitions=partitions,
            command_watermark=doc.get("command_watermark", 0),
            entity=entity,
        )


@dataclass
class IndexDescriptor:
    name: str
    relation_name: str
    segment_id: int
    kind: str  # "ttree" | "hash"
    key_field: str
    anchor: EntityAddress | None = None
    partitions: dict[int, PartitionInfo] = field(default_factory=dict)
    entity: EntityAddress | None = None

    def partition_addresses(self) -> list[PartitionAddress]:
        return [
            PartitionAddress(self.segment_id, number)
            for number in sorted(self.partitions)
        ]

    def encode(self) -> bytes:
        return json.dumps(
            {
                "kind": "index",
                "name": self.name,
                "relation": self.relation_name,
                "segment": self.segment_id,
                "type": self.kind,
                "field": self.key_field,
                "anchor": _address_to_json(self.anchor),
                "partitions": [p.to_json() for p in self.partitions.values()],
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def decode(cls, data: bytes, entity: EntityAddress) -> "IndexDescriptor":
        doc = json.loads(data.decode("utf-8"))
        partitions = {
            info[0]: PartitionInfo.from_json(info) for info in doc["partitions"]
        }
        return cls(
            name=doc["name"],
            relation_name=doc["relation"],
            segment_id=doc["segment"],
            kind=doc["type"],
            key_field=doc["field"],
            anchor=_address_from_json(doc["anchor"]),
            partitions=partitions,
            entity=entity,
        )


def _decode_descriptor(data: bytes, entity: EntityAddress):
    doc = json.loads(data.decode("utf-8"))
    if doc["kind"] == "relation":
        return RelationDescriptor.decode(data, entity)
    if doc["kind"] == "index":
        return IndexDescriptor.decode(data, entity)
    raise CatalogError(f"unknown catalog entity kind {doc['kind']!r}")


class Catalog:
    """The relation/index catalog, persisted in its own segment."""

    def __init__(self, memory: MemoryManager, segment: Segment | None = None):
        self.memory = memory
        if segment is None:
            segment = memory.create_segment(SegmentKind.CATALOG, CATALOG_SEGMENT_NAME)
        self.segment = segment
        self._relations: dict[str, RelationDescriptor] = {}
        self._indexes: dict[str, IndexDescriptor] = {}
        #: Checkpoint slots of the catalog's own partitions, mirrored into
        #: the well-known stable areas by the checkpoint manager.
        self.own_partition_slots: dict[int, int | None] = {}

    # -- lookups ---------------------------------------------------------------

    def relation(self, name: str) -> RelationDescriptor:
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"no relation {name!r}") from None

    def index(self, name: str) -> IndexDescriptor:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"no index {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relations(self) -> Iterator[RelationDescriptor]:
        for name in sorted(self._relations):
            yield self._relations[name]

    def indexes(self) -> Iterator[IndexDescriptor]:
        for name in sorted(self._indexes):
            yield self._indexes[name]

    def indexes_of(self, relation_name: str) -> list[IndexDescriptor]:
        descriptor = self.relation(relation_name)
        return [self.index(name) for name in descriptor.index_names]

    def descriptor_for_segment(self, segment_id: int):
        """Find the relation or index descriptor owning a segment."""
        for descriptor in self._relations.values():
            if descriptor.segment_id == segment_id:
                return descriptor
        for descriptor in self._indexes.values():
            if descriptor.segment_id == segment_id:
                return descriptor
        raise CatalogError(f"no catalogued object owns segment {segment_id}")

    def relation_of_segment(self, segment_id: int) -> RelationDescriptor:
        """The relation whose lock covers a segment (its own, or the one an
        index belongs to — paper section 2.4 step 3)."""
        descriptor = self.descriptor_for_segment(segment_id)
        if isinstance(descriptor, IndexDescriptor):
            return self.relation(descriptor.relation_name)
        return descriptor

    # -- persistence --------------------------------------------------------------

    def store_new(
        self,
        descriptor: RelationDescriptor | IndexDescriptor,
        sink: EntitySink | None,
    ) -> None:
        """Persist a brand-new descriptor and register it."""
        name = descriptor.name
        if name in self._relations or name in self._indexes:
            raise CatalogError(f"catalog already has an object named {name!r}")
        data = descriptor.encode()
        partition = self._partition_with_room(len(data), sink)
        offset = partition.insert(data)
        descriptor.entity = EntityAddress(
            partition.address.segment, partition.address.partition, offset
        )
        if sink is not None:
            sink.entity_inserted(descriptor.entity, data)
        self._register(descriptor)

    def update(
        self,
        descriptor: RelationDescriptor | IndexDescriptor,
        sink: EntitySink | None,
    ) -> None:
        """Rewrite a descriptor's catalog entity after a change."""
        if descriptor.entity is None:
            raise CatalogError(f"descriptor {descriptor.name!r} was never stored")
        partition = self.segment.get(descriptor.entity.partition)
        before = partition.read(descriptor.entity.offset)
        after = descriptor.encode()
        partition.update(descriptor.entity.offset, after)
        if sink is not None:
            sink.entity_updated(descriptor.entity, before, after)

    def drop(
        self,
        descriptor: RelationDescriptor | IndexDescriptor,
        sink: EntitySink | None,
    ) -> None:
        if descriptor.entity is None:
            raise CatalogError(f"descriptor {descriptor.name!r} was never stored")
        partition = self.segment.get(descriptor.entity.partition)
        before = partition.read(descriptor.entity.offset)
        partition.delete(descriptor.entity.offset)
        if sink is not None:
            sink.entity_deleted(descriptor.entity, before)
        if isinstance(descriptor, RelationDescriptor):
            del self._relations[descriptor.name]
        else:
            del self._indexes[descriptor.name]

    def _register(self, descriptor: RelationDescriptor | IndexDescriptor) -> None:
        if isinstance(descriptor, RelationDescriptor):
            self._relations[descriptor.name] = descriptor
        else:
            self._indexes[descriptor.name] = descriptor

    def _partition_with_room(self, nbytes: int, sink: EntitySink | None) -> Partition:
        needed = nbytes + ENTITY_HEADER_BYTES
        for partition in self.segment.resident_partitions():
            if partition.free_bytes >= needed:
                return partition
        partition = self.segment.allocate_partition()
        self.own_partition_slots.setdefault(partition.address.partition, None)
        if sink is not None:
            sink.partition_allocated(partition)
        return partition

    # -- recovery ----------------------------------------------------------------------

    def rebuild(self) -> None:
        """Repopulate the descriptor maps from recovered catalog partitions."""
        self._relations.clear()
        self._indexes.clear()
        for partition in self.segment.resident_partitions():
            for offset, data in partition.entities():
                entity = EntityAddress(
                    partition.address.segment, partition.address.partition, offset
                )
                self._register(_decode_descriptor(data, entity))

    def catalog_partition_numbers(self) -> list[int]:
        return sorted(self.own_partition_slots)

    def well_known_entry(self) -> list:
        """The catalog partition address list kept in the well-known stable
        areas: [(segment, partition, checkpoint_slot), ...]."""
        return [
            [self.segment.segment_id, number, self.own_partition_slots[number]]
            for number in sorted(self.own_partition_slots)
        ]

    @classmethod
    def from_well_known_entry(
        cls, memory: MemoryManager, entry: list
    ) -> tuple["Catalog", list[tuple[PartitionAddress, int | None]]]:
        """Rebuild the catalog shell after a crash.

        Returns the catalog plus the (address, checkpoint slot) pairs of
        its partitions, which the restart coordinator recovers first.
        """
        if not entry:
            raise CatalogError("well-known catalog partition list is empty")
        segment_id = entry[0][0]
        segment = memory.register_segment(
            segment_id, SegmentKind.CATALOG, CATALOG_SEGMENT_NAME
        )
        catalog = cls(memory, segment)
        locations = []
        for seg, number, slot in entry:
            if seg != segment_id:
                raise CatalogError("catalog partitions span segments")
            catalog.own_partition_slots[number] = slot
            locations.append((PartitionAddress(seg, number), slot))
        segment.mark_missing([number for _, number, _ in entry])
        return catalog, locations
