"""System catalogs.

The catalogs are first-class database objects: they live in their own
catalog segments, their partitions have Stable Log Tail bins and get
checkpointed like everything else, and their checkpoint disk locations are
duplicated in the well-known stable-memory areas so post-crash recovery
can restore them *first* (paper sections 2.4–2.5).
"""

from repro.catalog.schema import Field, FieldType, Schema
from repro.catalog.catalog import (
    Catalog,
    IndexDescriptor,
    PartitionInfo,
    RelationDescriptor,
)

__all__ = [
    "Catalog",
    "Field",
    "FieldType",
    "IndexDescriptor",
    "PartitionInfo",
    "RelationDescriptor",
    "Schema",
]
