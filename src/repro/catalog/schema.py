"""Relation schemas and tuple encoding.

Tuples are fixed-width in the partition's entity area: every field
occupies exactly eight bytes.  Integer fields store their value directly;
string and bytes fields store a handle into the partition's string-space
heap (section 2's separate mechanism for variable-length data).  Fixed
width makes single-field updates byte-range patches — the paper's compact
"update a field" log records.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.common.errors import CatalogError

FIELD_WIDTH = 8

_INT_FIELD = struct.Struct("<q")
_HANDLE_FIELD = struct.Struct("<Q")

#: Heap handle meaning SQL NULL for string/bytes fields.
NULL_HANDLE = 0


class FieldType(enum.Enum):
    INT = "int"
    STR = "str"
    BYTES = "bytes"

    @property
    def heap_backed(self) -> bool:
        return self is not FieldType.INT


@dataclass(frozen=True, slots=True)
class Field:
    name: str
    type: FieldType

    def to_json(self) -> list:
        return [self.name, self.type.value]

    @classmethod
    def from_json(cls, data: list) -> "Field":
        return cls(data[0], FieldType(data[1]))


class Schema:
    """An ordered set of named fields with encode/decode helpers."""

    def __init__(self, fields: list[Field]):
        if not fields:
            raise CatalogError("a schema needs at least one field")
        names = [field.name for field in fields]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate field names in {names}")
        self.fields = list(fields)
        self._positions = {field.name: i for i, field in enumerate(fields)}

    @classmethod
    def of(cls, spec: list[tuple[str, str]]) -> "Schema":
        """Build a schema from ``[("id", "int"), ("name", "str"), ...]``."""
        return cls([Field(name, FieldType(type_name)) for name, type_name in spec])

    # -- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def position(self, name: str) -> int:
        try:
            return self._positions[name]
        except KeyError:
            raise CatalogError(f"no field {name!r} in schema") from None

    def field(self, name: str) -> Field:
        return self.fields[self.position(name)]

    def byte_range(self, name: str) -> tuple[int, int]:
        """(start, end) byte offsets of a field inside the encoded tuple."""
        position = self.position(name)
        return position * FIELD_WIDTH, (position + 1) * FIELD_WIDTH

    @property
    def tuple_width(self) -> int:
        return len(self.fields) * FIELD_WIDTH

    # -- field-level encoding ----------------------------------------------------------

    def encode_field(self, name: str, value: int) -> bytes:
        """Encode one fixed-width cell (an int value or a heap handle)."""
        field = self.field(name)
        if field.type is FieldType.INT:
            return _INT_FIELD.pack(value)
        return _HANDLE_FIELD.pack(value)

    def decode_field(self, name: str, cell: bytes) -> int:
        field = self.field(name)
        if field.type is FieldType.INT:
            return _INT_FIELD.unpack(cell)[0]
        return _HANDLE_FIELD.unpack(cell)[0]

    # -- tuple-level encoding ------------------------------------------------------------

    def encode_tuple(self, cells: list[int]) -> bytes:
        """Pack the fixed-width cells (ints and heap handles) of a tuple."""
        if len(cells) != len(self.fields):
            raise CatalogError(
                f"expected {len(self.fields)} cells, got {len(cells)}"
            )
        parts = []
        for field, cell in zip(self.fields, cells):
            if field.type is FieldType.INT:
                parts.append(_INT_FIELD.pack(cell))
            else:
                parts.append(_HANDLE_FIELD.pack(cell))
        return b"".join(parts)

    def decode_tuple(self, data: bytes) -> list[int]:
        if len(data) != self.tuple_width:
            raise CatalogError(
                f"tuple is {len(data)} bytes, schema expects {self.tuple_width}"
            )
        cells = []
        for i, field in enumerate(self.fields):
            cell = data[i * FIELD_WIDTH : (i + 1) * FIELD_WIDTH]
            if field.type is FieldType.INT:
                cells.append(_INT_FIELD.unpack(cell)[0])
            else:
                cells.append(_HANDLE_FIELD.unpack(cell)[0])
        return cells

    # -- serialisation -------------------------------------------------------------------------

    def to_json(self) -> list:
        return [field.to_json() for field in self.fields]

    @classmethod
    def from_json(cls, data: list) -> "Schema":
        return cls([Field.from_json(entry) for entry in data])
