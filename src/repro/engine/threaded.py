"""The threaded engine: a real recovery processor thread plus a restore
worker pool.

The paper's hardware runs the recovery CPU concurrently with the main
CPU against shared stable memory.  Here the recovery processor's duties
execute on a dedicated host thread; callers submit a duty and wait for
its completion, so the *order* of duties — and therefore every metered
total — matches the cooperative engine, while the work itself runs on
the other thread against the now lock-hardened stable structures.

Restart phase 2 is where genuine concurrency pays: ``restore_partitions``
fans the missing-partition list out over a pool of worker threads, each
running independent recovery transactions (the paper's section 2.5 notes
these are ordinary transactions, so several can run at once).  Simulated
device time still aggregates on the shared virtual clock; wall-clock
speedup shows when disks are given a non-zero ``realtime_scale`` (see
``benchmarks/bench_parallel_recovery.py``).

Exceptions raised by a duty on the recovery thread — including simulated
crash faults from the chaos monkey — are ferried back and re-raised on
the submitting thread, so crash-injection tests behave identically under
both engines.
"""

from __future__ import annotations

import threading
import weakref

from repro.common.types import PartitionAddress
from repro.engine.base import ExecutionEngine
from repro.sim.chaos import crash_point


class _RecoveryThread:
    """A persistent worker executing one submitted job at a time.

    The single-slot mailbox keeps submissions strictly sequential: the
    submitter blocks until its job finishes, and the job's return value
    or exception crosses back over the mailbox.  The thread starts
    lazily (many test databases never pump) and is a daemon, with
    :meth:`stop` for deterministic shutdown.
    """

    def __init__(self, label: str):
        self._label = label
        self._cv = threading.Condition()
        self._job: tuple | None = None
        self._stop_requested = False
        self._thread: threading.Thread | None = None

    def _ensure_started(self) -> None:
        with self._cv:
            if self._thread is None or not self._thread.is_alive():
                self._stop_requested = False
                self._thread = threading.Thread(
                    target=self._loop, name=self._label, daemon=True
                )
                self._thread.start()

    def run_job(self, fn):
        """Execute ``fn`` on the recovery thread; return its result or
        re-raise its exception here."""
        self._ensure_started()
        box: dict = {"done": False, "value": None, "error": None}
        with self._cv:
            while self._job is not None:
                self._cv.wait()
            self._job = (fn, box)
            self._cv.notify_all()
            while not box["done"]:
                self._cv.wait()
        if box["error"] is not None:
            raise box["error"]
        return box["value"]

    def _loop(self) -> None:
        while True:
            with self._cv:
                while self._job is None and not self._stop_requested:
                    self._cv.wait()
                if self._stop_requested:
                    return
                fn, box = self._job
            value = error = None
            try:
                value = fn()
            # Not a swallow: the error crosses the mailbox and run_job
            # re-raises it on the submitting thread, so SimulatedCrash
            # and friends keep their control-flow meaning.
            except BaseException as exc:  # repro-check: ignore[RC04]
                error = exc
            with self._cv:
                box["value"] = value
                box["error"] = error
                box["done"] = True
                self._job = None
                self._cv.notify_all()

    def idle(self) -> bool:
        with self._cv:
            return self._job is None

    def stop(self) -> None:
        with self._cv:
            thread = self._thread
            self._stop_requested = True
            self._cv.notify_all()
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        with self._cv:
            self._thread = None


class ThreadedEngine(ExecutionEngine):
    """Recovery duties on their own thread; parallel phase-2 restores."""

    name = "threaded"

    def __init__(
        self,
        workers: int = 4,
        relaxed_pump: bool = False,
        thread_prefix: str = "repro",
    ):
        super().__init__()
        if workers < 1:
            raise ValueError("the threaded engine needs at least one worker")
        self.workers = workers
        #: Host-thread name prefix; a sharded deployment gives each node
        #: its own (``repro-shard3``) so stack dumps attribute work.
        self.thread_prefix = thread_prefix
        #: With relaxed determinism, :meth:`pump` makes ONE mailbox round
        #: trip instead of four: the full duty sequence (sort → ack →
        #: checkpoint → ack → background restore) runs as a single job on
        #: the recovery thread, in the same order but without the
        #: per-duty submit/observe barrier on the caller.  Duty *order*
        #: still matches SimEngine; what is relaxed is only when the
        #: caller observes intermediate state, so metered totals of a
        #: quiet pump stay identical while the mailbox hot path drops to
        #: a quarter of the round trips.
        self.relaxed_pump = relaxed_pump
        self._recovery = _RecoveryThread(f"{thread_prefix}-recovery-cpu")
        # The databases under test are created by the hundred; tie the
        # thread's lifetime to the engine object so abandoned instances
        # cannot leak host threads.
        self._finalizer = weakref.finalize(self, _RecoveryThread.stop, self._recovery)

    # -- recovery-CPU duties --------------------------------------------------

    def drain_log(self) -> int:
        db = self._require_db()
        return self._recovery.run_job(db.recovery_service.drain)

    def pump(self) -> None:
        db = self._require_db()
        if self.relaxed_pump:
            # One mailbox round trip: the whole duty sequence runs as a
            # single job, in the same order.  Checkpoint transactions are
            # no-wait (conflicts defer the request), so hosting them on
            # the recovery thread cannot block the mailbox on a user
            # transaction's locks.
            def batched() -> None:
                db.recovery_service.drain()
                db.checkpoint_service.acknowledge()
                db.checkpoint_service.process_pending()
                db.checkpoint_service.acknowledge()
                db.recovery_service.background_step()
                db.recovery_service.condense_step()

            self._recovery.run_job(batched)
            return
        # Same duty order as SimEngine; the recovery CPU's share runs on
        # the recovery thread, the checkpoint transactions (main-CPU work
        # in the paper) stay on the calling thread.
        self._recovery.run_job(db.recovery_service.drain)
        self._recovery.run_job(db.checkpoint_service.acknowledge)
        db.checkpoint_service.process_pending()
        self._recovery.run_job(db.checkpoint_service.acknowledge)
        db.recovery_service.background_step()
        self._recovery.run_job(db.recovery_service.condense_step)

    # -- restart phase 2 ------------------------------------------------------

    def restore_partitions(self, addresses: list[PartitionAddress]) -> int:
        db = self._require_db()
        coordinator = db.restart_coordinator
        if coordinator is None or not addresses:
            return 0
        pool_size = min(self.workers, len(addresses))
        if pool_size <= 1:
            return self._restore_sequential(addresses)
        work = list(addresses)
        state_lock = threading.Lock()
        recovered = [0]
        errors: list[BaseException] = []

        def worker() -> None:
            while True:
                with state_lock:
                    if errors or not work:
                        return
                    address = work.pop(0)
                try:
                    crash_point("engine.restore.before-partition")
                    if coordinator.recover_partition(address) is not None:
                        with state_lock:
                            recovered[0] += 1
                # Not a swallow: the first error stops the pool and is
                # re-raised on the caller after the failed address is
                # handed back to the restart queue.
                except BaseException as exc:  # repro-check: ignore[RC04]
                    with state_lock:
                        errors.append(exc)
                        work.insert(0, address)
                    return

        threads = [
            threading.Thread(
                target=worker, name=f"{self.thread_prefix}-restore-{i}", daemon=True
            )
            for i in range(pool_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            coordinator.requeue(work)
            raise errors[0]
        return recovered[0]

    # -- restore fan-out (media recovery) -------------------------------------

    def restore_map(self, fn, items: list) -> list:
        """Run a restore fan-out on the worker pool, results in input
        order.

        Same pool shape as :meth:`restore_partitions`: workers claim items
        by index, the first error stops the pool and is re-raised on the
        caller.  One worker (or one item) degenerates to the sequential
        base implementation, so SimEngine and ``workers=1`` apply in the
        identical order.
        """
        items = list(items)
        pool_size = min(self.workers, len(items))
        if pool_size <= 1:
            return super().restore_map(fn, items)
        results: list = [None] * len(items)
        state_lock = threading.Lock()
        next_index = [0]
        errors: list[BaseException] = []

        def worker() -> None:
            while True:
                with state_lock:
                    if errors or next_index[0] >= len(items):
                        return
                    index = next_index[0]
                    next_index[0] += 1
                try:
                    results[index] = fn(items[index])
                # Not a swallow: the first error stops the pool and is
                # re-raised on the caller, same as restore_partitions.
                except BaseException as exc:  # repro-check: ignore[RC04]
                    with state_lock:
                        errors.append(exc)
                    return

        threads = [
            threading.Thread(
                target=worker,
                name=f"{self.thread_prefix}-media-restore-{i}",
                daemon=True,
            )
            for i in range(pool_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results

    # -- lifecycle ------------------------------------------------------------

    def quiesce(self) -> None:
        # Submissions are synchronous, so "idle mailbox" means settled.
        while not self._recovery.idle():  # pragma: no cover - defensive
            pass

    def shutdown(self) -> None:
        self._recovery.stop()
