"""The execution-engine interface.

An engine decides *where* the recovery component's duties run — inline on
the caller (deterministic simulation) or on dedicated host threads (the
paper's genuinely concurrent two-processor hardware).  The database and
its services call only this interface; everything engine-specific stays
behind it.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.common.types import PartitionAddress
from repro.sim.chaos import crash_point, register_crash_point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database

register_crash_point(
    "engine.restore.before-partition",
    "restart phase 2: a restore worker claimed a partition, rebuild not "
    "yet started (fires on every engine's restore path)",
)


class ExecutionEngine(abc.ABC):
    """Scheduling policy for the recovery processor and restart work."""

    #: Short identifier used by monitoring and benchmarks.
    name: str = "abstract"

    def __init__(self) -> None:
        self.db: "Database | None" = None

    def attach(self, db: "Database") -> None:
        """Bind this engine to its database (called once from wiring)."""
        if self.db is not None and self.db is not db:
            raise RuntimeError("engine is already attached to a database")
        self.db = db

    def _require_db(self) -> "Database":
        if self.db is None:
            raise RuntimeError("engine is not attached to a database")
        return self.db

    # -- scheduling hooks -----------------------------------------------------

    @abc.abstractmethod
    def drain_log(self) -> int:
        """Run the recovery processor until the committed SLB is empty.

        Used at commit barriers, during restart phase 1, and by the main
        CPU's back-pressure stall when the SLB fills.  Returns the number
        of records sorted.
        """

    @abc.abstractmethod
    def pump(self) -> None:
        """Run the between-transactions duties of both processors, in the
        paper's order: sort, acknowledge, checkpoint, acknowledge, then
        one background restore step."""

    @abc.abstractmethod
    def restore_partitions(self, addresses: list[PartitionAddress]) -> int:
        """Restore the given partitions (restart phase 2 bulk path).

        Returns how many were actually rebuilt now (already-resident ones
        count zero).  On failure the unprocessed remainder is requeued on
        the restart coordinator before the error propagates.
        """

    def restore_map(self, fn, items: list) -> list:
        """Apply ``fn`` to every item of a restore fan-out, returning the
        results in input order.

        Media recovery uses this seam to rebuild per-partition replay
        streams the way restart phase 2 restores missing partitions: the
        items are independent, so an engine may run them on a worker
        pool.  The default applies them sequentially on the caller, in
        input order — the deterministic degenerate case.  On failure the
        first error propagates; items not yet started are abandoned (the
        caller owns any retry policy).
        """
        return [fn(item) for item in items]

    def quiesce(self) -> None:
        """Wait for any engine-internal background work to settle.

        Both built-in engines complete work synchronously, so the default
        is a no-op; engines with free-running threads must override.
        """

    def shutdown(self) -> None:
        """Release engine resources (threads).  Idempotent."""

    # -- shared sequential fallback -------------------------------------------

    def _restore_sequential(self, addresses: list[PartitionAddress]) -> int:
        """Restore partitions one at a time on the calling thread."""
        db = self._require_db()
        coordinator = db.restart_coordinator
        if coordinator is None:
            return 0
        recovered = 0
        remaining = list(addresses)
        while remaining:
            address = remaining.pop(0)
            try:
                crash_point("engine.restore.before-partition")
                if coordinator.recover_partition(address) is not None:
                    recovered += 1
            except BaseException:
                coordinator.requeue([address] + remaining)
                raise
        return recovered
