"""The deterministic cooperative engine.

Everything runs inline on the caller's thread in a fixed order, exactly
as the pre-engine ``Database.pump`` did.  This keeps the CPU instruction
metering — and therefore ``benchmarks/bench_sim_vs_model.py``'s
comparison against the closed-form model of paper section 3.2 —
bit-for-bit reproducible from run to run.
"""

from __future__ import annotations

from repro.common.types import PartitionAddress
from repro.engine.base import ExecutionEngine


class SimEngine(ExecutionEngine):
    """Cooperative single-threaded scheduling (the default)."""

    name = "sim"

    def drain_log(self) -> int:
        db = self._require_db()
        return db.recovery_service.drain()

    def pump(self) -> None:
        db = self._require_db()
        db.recovery_service.drain()
        db.checkpoint_service.acknowledge()
        db.checkpoint_service.process_pending()
        db.checkpoint_service.acknowledge()
        db.recovery_service.background_step()
        db.recovery_service.condense_step()

    def restore_partitions(self, addresses: list[PartitionAddress]) -> int:
        return self._restore_sequential(addresses)
