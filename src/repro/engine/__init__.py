"""Execution engines: how the two-processor architecture is scheduled.

The paper's hardware has a main CPU and a recovery CPU running
concurrently against shared stable memory.  The repository offers two
interchangeable schedulings of that design behind one interface:

* :class:`~repro.engine.sim.SimEngine` — the deterministic cooperative
  scheduler.  Both processors' duties run inline on the caller's thread
  in a fixed order, so instruction metering and the Table 2 / section 3.2
  model comparison are bit-for-bit reproducible.
* :class:`~repro.engine.threaded.ThreadedEngine` — the recovery
  processor on its own host thread, plus a worker pool that restores
  missing partitions concurrently during restart phase 2 and fans out
  the per-partition replay streams of a whole-database media restore
  (:meth:`~repro.engine.base.ExecutionEngine.restore_map`).

Select per database (``Database(engine=...)``) or process-wide with the
``REPRO_ENGINE`` environment variable (``sim`` | ``threaded``), which CI
uses to run the whole suite under the threaded engine.
"""

from __future__ import annotations

import os

from repro.engine.base import ExecutionEngine
from repro.engine.sim import SimEngine
from repro.engine.threaded import ThreadedEngine

__all__ = [
    "ExecutionEngine",
    "SimEngine",
    "ThreadedEngine",
    "engine_from_env",
]

#: Environment variable naming the default engine for new databases.
ENGINE_ENV_VAR = "REPRO_ENGINE"
#: Environment variable sizing the threaded engine's restore pool.
WORKERS_ENV_VAR = "REPRO_ENGINE_WORKERS"
#: Environment variable opting the threaded engine into the relaxed
#: (batched, one-mailbox-round-trip) pump.  Off by default so duty
#: observation stays SimEngine-identical.
RELAXED_ENV_VAR = "REPRO_ENGINE_RELAXED"


def engine_from_env() -> ExecutionEngine:
    """Build the engine selected by ``REPRO_ENGINE`` (default: sim)."""
    kind = os.environ.get(ENGINE_ENV_VAR, "sim").strip().lower()
    if kind in ("", "sim"):
        return SimEngine()
    if kind == "threaded":
        workers = int(os.environ.get(WORKERS_ENV_VAR, "4"))
        relaxed = os.environ.get(RELAXED_ENV_VAR, "").strip().lower() in (
            "1",
            "true",
            "yes",
            "on",
        )
        return ThreadedEngine(workers=workers, relaxed_pump=relaxed)
    raise ValueError(
        f"unknown {ENGINE_ENV_VAR} value {kind!r}; expected 'sim' or 'threaded'"
    )
