"""The sharded database facade: N shard nodes behind the Database API.

:class:`ShardedDatabase` preserves the public single-node surface —
``create_relation`` / ``table`` / ``transaction`` / ``stats`` /
``snapshot`` / ``crash`` / ``restart`` — while dispatching through a
:class:`~repro.shard.router.ShardRouter`:

* a transaction whose declared access list routes to **one** shard runs
  *unchanged* on that node (same code path as a standalone database,
  which is why ``shards=1`` degenerates digest-identically);
* a transaction touching **several** shards becomes a
  :class:`DistributedTransaction` — one branch per node — committed by
  the presumed-abort :class:`~repro.shard.twopc.TwoPhaseCommit`.

Relations are whole-relation sharded (each relation, with its indexes,
lives on exactly one node), so the paper's predeclared access lists are
a complete routing oracle: declaring relations declares shards.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

from repro.common.config import SystemConfig
from repro.common.errors import ReproError
from repro.db.database import RecoveryMode
from repro.db.relation import Relation, Row
from repro.recovery.oracle import logical_digest
from repro.shard.engine import fan_out
from repro.shard.node import ShardNode
from repro.shard.router import ShardRouter
from repro.shard.twopc import TwoPhaseCommit
from repro.sim.faults import SimulatedCrash
from repro.txn.transaction import Transaction, TxnState


class ShardingError(ReproError):
    """A facade request that violates the sharded topology."""


class DistributedTransaction:
    """One branch transaction per participant shard, committed via 2PC.

    Scripts use it exactly like a plain transaction *through the facade's
    relation handles*: :class:`ShardedRelation` resolves each call to the
    branch on the owning node.  The coordinator is the lowest declared
    shard id.
    """

    def __init__(self, facade: "ShardedDatabase", gtid: str, shard_ids: tuple[int, ...]):
        self.facade = facade
        self.gtid = gtid
        self.shard_ids = tuple(sorted(shard_ids))
        self.coordinator = self.shard_ids[0]
        self.state = "active"
        self.branches: dict[int, Transaction] = {}
        try:
            for sid in self.shard_ids:
                self.branches[sid] = facade.nodes[sid].db.transactions.begin(
                    user_data=f"2pc:{gtid}"
                )
        except BaseException:
            for txn in self.branches.values():
                if txn.state is TxnState.ACTIVE:
                    txn.abort()
            raise

    def branch(self, shard_id: int) -> Transaction:
        try:
            return self.branches[shard_id]
        except KeyError:
            raise ShardingError(
                f"distributed txn {self.gtid} has no branch on shard "
                f"{shard_id}; declare the relation in the access list"
            ) from None

    @property
    def txn_ids(self) -> dict[int, int]:
        return {sid: txn.txn_id for sid, txn in self.branches.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedTransaction(gtid={self.gtid!r}, shards={self.shard_ids}, "
            f"state={self.state})"
        )


class _ResolvingQuery:
    """A :class:`~repro.db.query.Query` that accepts distributed txns.

    Builder calls delegate to the underlying query; terminal calls
    resolve the (possibly distributed) transaction to the owning node's
    branch first.
    """

    def __init__(self, relation: "ShardedRelation"):
        self._relation = relation
        self._query = relation.local.query()

    def where(self, field: str, op: str, value) -> "_ResolvingQuery":
        self._query.where(field, op, value)
        return self

    def select(self, *fields: str) -> "_ResolvingQuery":
        self._query.select(*fields)
        return self

    def explain(self) -> str:
        return self._query.explain()

    def rows(self, txn) -> Iterator[Row]:
        return self._query.rows(self._relation._resolve(txn))

    def execute(self, txn) -> list[dict]:
        return self._query.execute(self._relation._resolve(txn))

    def count(self, txn) -> int:
        return self._query.count(self._relation._resolve(txn))

    def sum(self, txn, field: str) -> int:
        return self._query.sum(self._relation._resolve(txn), field)

    def min(self, txn, field: str):
        return self._query.min(self._relation._resolve(txn), field)

    def max(self, txn, field: str):
        return self._query.max(self._relation._resolve(txn), field)

    def avg(self, txn, field: str):
        return self._query.avg(self._relation._resolve(txn), field)


class ShardedRelation:
    """A relation handle that routes every call to its owning node."""

    def __init__(self, facade: "ShardedDatabase", name: str):
        self.facade = facade
        self.name = name

    @property
    def shard_id(self) -> int:
        return self.facade.router.shard_of(self.name)

    @property
    def node(self) -> ShardNode:
        return self.facade.nodes[self.shard_id]

    @property
    def local(self) -> Relation:
        """The owning node's plain :class:`Relation` handle."""
        return self.node.db.table(self.name)

    def _resolve(self, txn) -> Transaction:
        """The branch (or plain txn) that may touch this relation."""
        if isinstance(txn, DistributedTransaction):
            return txn.branch(self.shard_id)
        if txn.db is not self.node.db:
            raise ShardingError(
                f"transaction on shard {txn.db.shard_id} cannot touch "
                f"relation {self.name!r} on shard {self.shard_id}; declare "
                f"it in the transaction's access list"
            )
        return txn

    # -- delegated DML ------------------------------------------------------------

    def insert(self, txn, row: dict):
        return self.local.insert(self._resolve(txn), row)

    def read(self, txn, address) -> Row:
        return self.local.read(self._resolve(txn), address)

    def update(self, txn, address, changes: dict) -> None:
        return self.local.update(self._resolve(txn), address, changes)

    def delete(self, txn, address) -> None:
        return self.local.delete(self._resolve(txn), address)

    def lookup(self, txn, key_value) -> Row | None:
        return self.local.lookup(self._resolve(txn), key_value)

    def lookup_by(self, txn, index_name: str, key_value) -> list[Row]:
        return self.local.lookup_by(self._resolve(txn), index_name, key_value)

    def range_by(self, txn, index_name: str, low, high) -> list[Row]:
        return self.local.range_by(self._resolve(txn), index_name, low, high)

    def scan(self, txn) -> Iterator[Row]:
        return self.local.scan(self._resolve(txn))

    def count(self, txn) -> int:
        return self.local.count(self._resolve(txn))

    def update_where(self, txn, field: str, op: str, value, changes: dict) -> int:
        return self.local.update_where(self._resolve(txn), field, op, value, changes)

    def delete_where(self, txn, field: str, op: str, value) -> int:
        return self.local.delete_where(self._resolve(txn), field, op, value)

    def query(self) -> _ResolvingQuery:
        return _ResolvingQuery(self)

    @property
    def schema(self):
        return self.local.schema

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedRelation({self.name!r} @ shard {self.shard_id})"


class ShardedDatabase:
    """N shared-nothing shard nodes behind the single-database API."""

    def __init__(
        self,
        shards: int = 1,
        config: SystemConfig | None = None,
        engine: str = "sim",
        workers: int = 4,
        relaxed_pump: bool = False,
        placement: dict[str, int] | None = None,
    ):
        if engine not in ("sim", "threaded"):
            raise ShardingError(f"unknown engine kind {engine!r}")
        self.engine_kind = engine
        self.router = ShardRouter(shards, placement)
        self.nodes = [
            ShardNode(
                sid,
                config,
                engine_kind=engine,
                workers=workers,
                relaxed_pump=relaxed_pump,
            )
            for sid in range(shards)
        ]
        self.twopc = TwoPhaseCommit(self)
        for node in self.nodes:
            node.db.in_doubt_resolver = self.twopc.resolver_for(node.shard_id)
        self._tables: dict[str, ShardedRelation] = {}  # guarded-by: _mutex
        self._next_gtid = 1  # guarded-by: _mutex
        self._mutex = threading.Lock()

    # -- topology -----------------------------------------------------------------

    @property
    def shards(self) -> int:
        return len(self.nodes)

    def node(self, shard_id: int) -> ShardNode:
        return self.nodes[shard_id]

    @property
    def parallel(self) -> bool:
        """Whether cluster-wide operations may fan out on host threads."""
        return self.engine_kind == "threaded"

    # -- DDL ----------------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        schema,
        primary_key: str,
        primary_index: str = "hash",
        shard: int | None = None,
    ) -> ShardedRelation:
        """Create a relation on its home shard (pinned or stable-hashed)."""
        sid = self.router.assign(name, shard)
        self.nodes[sid].db.create_relation(
            name, schema, primary_key, primary_index
        )
        handle = ShardedRelation(self, name)
        with self._mutex:
            self._tables[name] = handle
        return handle

    def create_index(
        self, index_name: str, relation_name: str, field: str, kind: str = "ttree"
    ) -> None:
        """Indexes live with their relation on the owning node."""
        sid = self.router.shard_of(relation_name)
        self.nodes[sid].db.create_index(index_name, relation_name, field, kind)

    def drop_index(self, index_name: str) -> None:
        for node in self.nodes:
            if any(d.name == index_name for d in node.db.catalog.indexes()):
                node.db.drop_index(index_name)
                return
        raise ShardingError(f"no shard owns index {index_name!r}")

    def drop_relation(self, name: str) -> None:
        sid = self.router.shard_of(name)
        self.nodes[sid].db.drop_relation(name)
        self.router.unassign(name)
        with self._mutex:
            self._tables.pop(name, None)

    def table(self, name: str) -> ShardedRelation:
        with self._mutex:
            handle = self._tables.get(name)
        if handle is None:
            self.nodes[self.router.shard_of(name)].db.catalog.relation(name)
            handle = ShardedRelation(self, name)
            with self._mutex:
                self._tables.setdefault(name, handle)
        return handle

    # -- transactions -------------------------------------------------------------

    def _mint_gtid(self) -> str:
        with self._mutex:
            gtid = f"g{self._next_gtid}"
            self._next_gtid += 1
        return gtid

    def transaction(
        self, *, pump: bool = True, relations: list[str] | None = None
    ):
        """``with cluster.transaction(relations=[...]) as txn:``

        The declared access list routes the transaction.  One shard: the
        owning node's ordinary transaction scope, unchanged.  Several:
        a :class:`DistributedTransaction` committed via 2PC on success,
        rolled back everywhere on exception.  An empty declaration pins
        the transaction to shard 0 (the ``shards=1`` degenerate home).
        """
        shard_ids = self.router.route(relations or [])
        if len(shard_ids) == 1:
            return self.nodes[shard_ids[0]].db.transaction(
                pump=pump, relations=relations
            )
        return self._distributed_scope(shard_ids, relations or [], pump)

    def ensure_recovered(self, relations: list[str]) -> None:
        """Predeclared recovery (paper method 1), per owning node."""
        for name in relations:
            node = self.nodes[self.router.shard_of(name)]
            if node.db.restart_coordinator is not None:
                node.db.restart_coordinator.recover_relation(name)

    @contextlib.contextmanager
    def _distributed_scope(
        self, shard_ids: tuple[int, ...], relations: list[str], pump: bool
    ):
        self.ensure_recovered(relations)
        dtxn = DistributedTransaction(self, self._mint_gtid(), shard_ids)
        self.twopc.register(dtxn)
        try:
            yield dtxn
        except SimulatedCrash:
            # Machine-crash contract: no abort machinery; crash_shard()'s
            # pending sweep and restart resolution settle the branches.
            raise
        except BaseException:
            self.twopc.abort_distributed(dtxn)
            raise
        self.twopc.commit_distributed(dtxn)
        if pump:
            for sid in shard_ids:
                self.nodes[sid].db.pump()

    # -- cluster-wide duties ------------------------------------------------------

    def pump(self) -> None:
        """Every node's between-transactions duties (parallel when threaded)."""
        fan_out([node.pump for node in self.nodes], parallel=self.parallel)

    # -- crash / restart ----------------------------------------------------------

    def crash_shard(self, shard_id: int) -> None:
        """One node dies: lose its main memory, settle in-flight 2PC."""
        if not self.nodes[shard_id].crashed:
            self.nodes[shard_id].crash()
        self.twopc.on_shard_crashed(shard_id)

    def crash(self) -> None:
        """Whole-cluster power failure."""
        for node in self.nodes:
            if not node.crashed:
                node.crash()
        for node in self.nodes:
            self.twopc.on_shard_crashed(node.shard_id)

    def restart_shard(
        self, shard_id: int, mode: RecoveryMode = RecoveryMode.ON_DEMAND
    ):
        """Restart one node; its in-doubt chains resolve against the
        (stable, still-readable) coordinator decision tables."""
        return self.nodes[shard_id].restart(mode)

    def restart(self, mode: RecoveryMode = RecoveryMode.ON_DEMAND) -> None:
        """Restart every crashed node (parallel when threaded)."""
        crashed = [node for node in self.nodes if node.crashed]
        fan_out(
            [lambda n=node: n.restart(mode) for node in crashed],
            parallel=self.parallel,
        )

    def recover_everything(self) -> None:
        fan_out(
            [node.recover_everything for node in self.nodes], parallel=self.parallel
        )

    @property
    def crashed_shards(self) -> list[int]:
        return [node.shard_id for node in self.nodes if node.crashed]

    def digests(self) -> dict[int, str]:
        """Per-shard logical digests (requires full residency everywhere)."""
        return {node.shard_id: logical_digest(node.db) for node in self.nodes}

    # -- observability ------------------------------------------------------------

    def stats(self) -> dict:
        """Aggregated counters plus the per-shard breakdown."""
        per_shard = {node.shard_id: node.db.stats() for node in self.nodes}
        return {
            "engine": self.engine_kind,
            "shards": {
                "count": self.shards,
                "router": self.router.stats(),
                "per_shard": per_shard,
            },
            "twopc": self.twopc.stats(),
            "transactions_committed": sum(
                s["transactions_committed"] for s in per_shard.values()
            ),
            "transactions_aborted": sum(
                s["transactions_aborted"] for s in per_shard.values()
            ),
            "clock_seconds": max(s["clock_seconds"] for s in per_shard.values()),
        }

    def snapshot(self) -> dict:
        """Monitor-style snapshot: per-node snapshots (each under its own
        view lock) plus cluster aggregates."""
        per_shard = {node.shard_id: node.monitor.snapshot() for node in self.nodes}
        return {
            "shards": {"count": self.shards, "router": self.router.stats()},
            "twopc": self.twopc.stats(),
            "per_shard": per_shard,
        }

    def report(self) -> str:
        lines = [f"=== sharded cluster: {self.shards} nodes " + "=" * 24]
        twopc = self.twopc.stats()
        lines.append(
            f"2pc                 {twopc['distributed_committed']} committed / "
            f"{twopc['distributed_aborted']} aborted / "
            f"{twopc['pending']} in flight"
        )
        for node in self.nodes:
            lines.append(f"--- node {node.shard_id} " + "-" * 40)
            lines.append(node.monitor.report())
        return "\n".join(lines)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        for node in self.nodes:
            node.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedDatabase(shards={self.shards}, engine={self.engine_kind})"
