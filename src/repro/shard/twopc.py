"""Presumed-abort two-phase commit over the no-wait 2PL.

Cross-shard transactions run one *branch* transaction per participant
node.  Commit is the lightweight protocol the paper's instant-commit
machinery makes almost free:

* **Prepare** — each branch forces a :class:`~repro.wal.records.TxnPrepare`
  into its node's Stable Log Buffer (:meth:`Transaction.prepare`): the
  chain moves to the stable prepared list, locks and UNDO stay held.
  Because the SLB is stable memory, "force" costs a list move, not an
  I/O — the same trick as single-shard instant commit.
* **Decision** — with every branch prepared, the coordinator (lowest
  participant shard id) logs COMMIT into its SLB's well-known decision
  table.  That single stable write is the transaction's commit point.
  Aborts are never logged: an absent decision *is* ABORT (presumed
  abort), so read-only and failed transactions cost the coordinator
  nothing.
* **Phase 2** — each branch's chain moves prepared → committed and its
  locks release; each ack removes the participant from the decision
  entry, and a fully-acknowledged decision is forgotten.

Recovery: a crashed node restarts with in-doubt chains; its resolver
(installed per node by :class:`~repro.shard.ShardedDatabase`) reads the
coordinator's decision table — stable memory, readable even while the
coordinator node itself is down — commits or aborts each chain, and
acks.  A coordinator that died between prepare and decision left no
entry, so every branch resolves to the presumed abort.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.common.errors import ReproError
from repro.sim.chaos import crash_point, register_crash_point
from repro.sim.faults import SimulatedCrash
from repro.txn.transaction import TxnState
from repro.wal.records import TxnDecision, TxnPrepare

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database
    from repro.shard.sharded import DistributedTransaction, ShardedDatabase

#: Well-known SLB key of a coordinator's stable decision table.
DECISIONS_KEY = "2pc-decisions"

register_crash_point(
    "shard.2pc.before-decision",
    "every branch prepared, before the coordinator logs COMMIT",
)
register_crash_point(
    "shard.2pc.after-decision",
    "COMMIT decision logged, before any branch runs phase 2",
)


class TwoPCError(ReproError):
    """A protocol-state violation in the 2PC layer."""


class _NodeResolver:
    """One node's in-doubt resolver: consult the coordinator's table.

    Installed as ``db.in_doubt_resolver`` on every shard node; restart's
    :meth:`~repro.db.recovery_service.RecoveryService.resolve_in_doubt`
    calls ``decide`` per prepared chain and ``acknowledge`` after the
    verdict is applied.
    """

    def __init__(self, twopc: "TwoPhaseCommit", shard_id: int):
        self._twopc = twopc
        self.shard_id = shard_id

    def decide(self, prepare: TxnPrepare) -> str:
        return self._twopc.lookup_decision(prepare.coordinator, prepare.gtid)

    def acknowledge(self, prepare: TxnPrepare, verdict: str) -> None:
        if verdict == "commit":
            self._twopc.acknowledge(prepare.coordinator, prepare.gtid, prepare.shard)


class TwoPhaseCommit:
    """The facade's commit coordinator for distributed transactions."""

    def __init__(self, facade: "ShardedDatabase"):
        self.facade = facade
        #: In-flight distributed transactions by gtid, so a shard crash
        #: can settle the survivors' branches (presumed abort or re-driven
        #: phase 2) without waiting for the dead node's restart.
        self._pending: dict[str, "DistributedTransaction"] = {}  # guarded-by: _mutex
        self._mutex = threading.Lock()
        #: Serialises copy-modify-put cycles on every node's decision
        #: table (facade-wide: restart resolution on one node and phase-2
        #: acks on another may target the same coordinator entry).
        self._decision_mutex = threading.RLock()
        self._stats_mutex = threading.Lock()
        self.distributed_started = 0
        self.distributed_committed = 0
        self.distributed_aborted = 0

    # -- registry -----------------------------------------------------------------

    def register(self, dtxn: "DistributedTransaction") -> None:
        with self._mutex:
            self._pending[dtxn.gtid] = dtxn
        with self._stats_mutex:
            self.distributed_started += 1

    def forget(self, gtid: str) -> None:
        with self._mutex:
            self._pending.pop(gtid, None)

    def pending_gtids(self) -> list[str]:
        with self._mutex:
            return sorted(self._pending)

    def _node_db(self, shard_id: int) -> "Database":
        return self.facade.nodes[shard_id].db

    # -- the protocol -------------------------------------------------------------

    def commit_distributed(self, dtxn: "DistributedTransaction") -> None:
        """Prepare every branch, log the decision, run phase 2."""
        try:
            for sid in dtxn.shard_ids:
                txn = dtxn.branches[sid]
                record = TxnPrepare(
                    txn.txn_id, dtxn.gtid, sid, dtxn.coordinator, dtxn.shard_ids
                )
                txn.prepare(record.encode())
        except SimulatedCrash:
            # A node died mid-prepare: the machine-crash contract applies
            # (no abort machinery runs here); crash_shard()'s pending-dtxn
            # sweep settles the surviving branches.
            raise
        except BaseException:
            self.abort_distributed(dtxn)
            raise
        crash_point("shard.2pc.before-decision")
        self._log_decision(dtxn)
        crash_point("shard.2pc.after-decision")
        for sid in dtxn.shard_ids:
            dtxn.branches[sid].commit_prepared()
            self.acknowledge(dtxn.coordinator, dtxn.gtid, sid)
        dtxn.state = "committed"
        with self._stats_mutex:
            self.distributed_committed += 1
        self.forget(dtxn.gtid)

    def abort_distributed(self, dtxn: "DistributedTransaction") -> None:
        """Roll back every live branch; no decision is ever logged."""
        for sid in dtxn.shard_ids:
            if self._node_db(sid).crashed:
                continue  # resolved by that node's restart (presumed abort)
            txn = dtxn.branches[sid]
            if txn.state is TxnState.ACTIVE:
                txn.abort()
            elif txn.state is TxnState.PREPARED:
                txn.abort_prepared()
        dtxn.state = "aborted"
        with self._stats_mutex:
            self.distributed_aborted += 1
        self.forget(dtxn.gtid)

    # -- the stable decision table ------------------------------------------------

    def _log_decision(self, dtxn: "DistributedTransaction") -> None:
        """The commit point: one stable write on the coordinator node."""
        record = TxnDecision(0, dtxn.gtid, "commit", dtxn.shard_ids)
        coordinator_db = self._node_db(dtxn.coordinator)
        with self._decision_mutex:
            table = dict(coordinator_db.slb.get_well_known(DECISIONS_KEY) or {})
            table[dtxn.gtid] = {
                "verdict": "commit",
                "pending": list(dtxn.shard_ids),
                "record": record.encode(),
            }
            coordinator_db.slb.put_well_known(DECISIONS_KEY, table)
        coordinator_db.twopc.bump("decisions_logged")

    def lookup_decision(self, coordinator: int, gtid: str) -> str:
        """The coordinator's verdict for ``gtid`` — absent means abort."""
        with self._decision_mutex:
            table = self._node_db(coordinator).slb.get_well_known(DECISIONS_KEY) or {}
            entry = table.get(gtid)
        if entry is not None and entry["verdict"] == "commit":
            return "commit"
        return "abort"

    def acknowledge(self, coordinator: int, gtid: str, shard: int) -> None:
        """One participant applied the verdict; forget fully-acked entries."""
        coordinator_db = self._node_db(coordinator)
        with self._decision_mutex:
            table = dict(coordinator_db.slb.get_well_known(DECISIONS_KEY) or {})
            entry = table.get(gtid)
            if entry is None:
                return
            pending = [sid for sid in entry["pending"] if sid != shard]
            if pending:
                table[gtid] = {**entry, "pending": pending}
            else:
                del table[gtid]
            coordinator_db.slb.put_well_known(DECISIONS_KEY, table)

    def decision_table(self, coordinator: int) -> dict:
        """A copy of one node's decision table (tests / monitoring)."""
        with self._decision_mutex:
            return dict(self._node_db(coordinator).slb.get_well_known(DECISIONS_KEY) or {})

    # -- shard-crash handling -----------------------------------------------------

    def on_shard_crashed(self, shard_id: int) -> None:
        """Settle every in-flight distributed txn touching a dead node.

        Presumed abort does the heavy lifting: without a logged COMMIT
        the survivors' branches roll back immediately — no blocking on
        the dead node, which is the point of choosing presumed abort
        over presumed commit for a no-wait system.  With a logged COMMIT
        the survivors' prepared branches are driven through phase 2
        (the dead node's branch resolves the same way at its restart).
        """
        with self._mutex:
            touched = [
                dtxn for dtxn in self._pending.values() if shard_id in dtxn.shard_ids
            ]
        for dtxn in touched:
            verdict = self.lookup_decision(dtxn.coordinator, dtxn.gtid)
            if verdict == "commit":
                for sid in dtxn.shard_ids:
                    if self._node_db(sid).crashed:
                        continue
                    txn = dtxn.branches[sid]
                    if txn.state is TxnState.PREPARED:
                        txn.commit_prepared()
                        self.acknowledge(dtxn.coordinator, dtxn.gtid, sid)
                dtxn.state = "committed"
                with self._stats_mutex:
                    self.distributed_committed += 1
                self.forget(dtxn.gtid)
            else:
                self.abort_distributed(dtxn)

    def resolver_for(self, shard_id: int) -> _NodeResolver:
        return _NodeResolver(self, shard_id)

    # -- observability ------------------------------------------------------------

    def stats(self) -> dict:
        """Facade-level protocol counters plus per-node 2PC totals."""
        with self._stats_mutex:
            out = {
                "distributed_started": self.distributed_started,
                "distributed_committed": self.distributed_committed,
                "distributed_aborted": self.distributed_aborted,
            }
        out["pending"] = len(self.pending_gtids())
        totals: dict[str, int] = {}
        for node in self.facade.nodes:
            for key, value in node.db.twopc.snapshot().items():
                totals[key] = totals.get(key, 0) + value
        out["nodes"] = totals
        return out
