"""One shard node: a full Database scoped to its partition subset.

The decomposition the tentpole asks for is deliberately thin: a
:class:`ShardNode` *is* a :class:`~repro.db.database.Database` — with
its own simulated hardware, Stable Log Buffer, Stable Log Tail,
LoggingService, CheckpointService, and RecoveryService — plus the shard
identity and the engine that drives it.  Nothing in the single-node
code paths forks: a node recovers, checkpoints, and logs exactly like a
standalone database, which is what makes kill-one-shard recovery
"recover only that shard's partitions" for free.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.db.database import Database, RecoveryMode
from repro.db.monitor import Monitor
from repro.engine.sim import SimEngine
from repro.recovery.restart import RestartCoordinator
from repro.shard.engine import ShardedEngine


class ShardNode:
    """A shard id bound to its database and execution engine."""

    def __init__(
        self,
        shard_id: int,
        config: SystemConfig | None = None,
        engine_kind: str = "sim",
        workers: int = 4,
        relaxed_pump: bool = False,
    ):
        if engine_kind not in ("sim", "threaded"):
            raise ValueError(f"unknown engine kind {engine_kind!r}")
        self.shard_id = shard_id
        self.engine_kind = engine_kind
        if engine_kind == "sim":
            engine = SimEngine()
        else:
            engine = ShardedEngine(
                shard_id, workers=workers, relaxed_pump=relaxed_pump
            )
        self.db = Database(config, engine=engine)
        self.db.shard_id = shard_id
        self.monitor = Monitor(self.db)

    @property
    def label(self) -> str:
        return f"shard{self.shard_id}"

    @property
    def crashed(self) -> bool:
        return self.db.crashed

    # -- lifecycle pass-throughs ---------------------------------------------------

    def pump(self) -> None:
        self.db.pump()

    def crash(self) -> None:
        self.db.crash()

    def restart(self, mode: RecoveryMode = RecoveryMode.ON_DEMAND) -> RestartCoordinator:
        return self.db.restart(mode)

    def recover_everything(self) -> None:
        if self.db.restart_coordinator is not None:
            self.db.restart_coordinator.recover_everything()

    def close(self) -> None:
        self.db.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardNode(shard_id={self.shard_id}, engine={self.engine_kind})"
