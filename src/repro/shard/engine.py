"""The sharded execution engine: one node's slice of the cluster.

A :class:`ShardedEngine` is a :class:`~repro.engine.threaded.ThreadedEngine`
that knows which shard it drives: its recovery-CPU thread, phase-2
restore pool, and media-restore pool are all named after the node
(``repro-shard3-recovery-cpu`` …), so every node gets its own worker
pool, duty pumping, and restore fan-out while sharing no thread — the
shared-nothing property the topology is named for.

:func:`fan_out` is the facade-side complement: it runs one callable per
node on parallel host threads (cluster-wide pump, restart, eager
recovery), which is safe precisely because nodes share no state — each
thread touches exactly one node's locks, clocks, and stable structures.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.engine.threaded import ThreadedEngine


class ShardedEngine(ThreadedEngine):
    """A per-node threaded engine carrying its shard identity."""

    name = "sharded"

    def __init__(
        self,
        shard_id: int,
        workers: int = 4,
        relaxed_pump: bool = False,
    ):
        if shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        super().__init__(
            workers=workers,
            relaxed_pump=relaxed_pump,
            thread_prefix=f"repro-shard{shard_id}",
        )
        self.shard_id = shard_id


def fan_out(jobs: list[Callable[[], object]], parallel: bool = True) -> list:
    """Run one job per node; results in input order.

    ``parallel=False`` (the sim-engine cluster) applies the jobs
    sequentially in order, keeping the deterministic schedule.  With
    threads, the first error stops nothing early — every node's job runs
    to completion so a surviving shard never sees a half-applied cluster
    operation — but the first error is re-raised on the caller.
    """
    if not parallel or len(jobs) <= 1:
        return [job() for job in jobs]
    results: list = [None] * len(jobs)
    errors: list[BaseException] = []
    state_lock = threading.Lock()

    def run(index: int) -> None:
        try:
            results[index] = jobs[index]()
        # Not a swallow: the first error is re-raised on the caller after
        # every node finished its job.
        except BaseException as exc:  # repro-check: ignore[RC04]
            with state_lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,), name=f"repro-fanout-{i}", daemon=True)
        for i in range(len(jobs))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results
