"""Shared-nothing sharding over the single-node database.

The package decomposes the system into :class:`ShardNode`\\ s (each a
full Database with its own stable memory, logging, checkpointing, and
recovery), routes transactions with the paper's predeclared access
lists (:class:`ShardRouter`), and commits cross-shard work with a
presumed-abort two-phase commit over the no-wait 2PL
(:class:`~repro.shard.twopc.TwoPhaseCommit`).  The
:class:`ShardedDatabase` facade keeps the public single-node API, and
``shards=1`` degenerates digest-identically to a standalone database.
"""

from repro.shard.engine import ShardedEngine, fan_out
from repro.shard.node import ShardNode
from repro.shard.router import RoutingError, ShardRouter
from repro.shard.scheduler import ShardedScheduler
from repro.shard.sharded import (
    DistributedTransaction,
    ShardedDatabase,
    ShardedRelation,
    ShardingError,
)
from repro.shard.twopc import DECISIONS_KEY, TwoPCError, TwoPhaseCommit

__all__ = [
    "DECISIONS_KEY",
    "DistributedTransaction",
    "RoutingError",
    "ShardNode",
    "ShardRouter",
    "ShardedDatabase",
    "ShardedEngine",
    "ShardedRelation",
    "ShardedScheduler",
    "ShardingError",
    "TwoPCError",
    "TwoPhaseCommit",
    "fan_out",
]
