"""The sharded scheduler: routed script execution with no-wait retry.

Scripts are the same replayable generators the single-node schedulers
run.  Submission carries the declared access list, and the router splits
the batch:

* **single-shard scripts** go to a per-node
  :class:`~repro.txn.concurrent.ConcurrentScheduler` — on a threaded
  cluster every node's pool runs on its own driver thread, so N shards
  genuinely commit in parallel (the bench's scaling axis); on a sim
  cluster the pools run sequentially, keeping the deterministic
  schedule;
* **cross-shard scripts** are driven by a cooperative round-robin over
  :class:`~repro.shard.sharded.DistributedTransaction` branches: a
  no-wait conflict on any branch aborts the whole distributed
  transaction (presumed abort — nothing was logged) and requeues the
  script with the single-node backoff stagger.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Iterator

from repro.common.errors import TransactionAborted
from repro.shard.engine import fan_out
from repro.shard.sharded import DistributedTransaction
from repro.sim.faults import SimulatedCrash
from repro.txn.concurrent import ConcurrentScheduler
from repro.txn.scheduler import SchedulerError, ScriptResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.sharded import ShardedDatabase

#: A cross-shard script: drives a distributed transaction, yielding
#: between operations exactly like a single-node script.
CrossScript = Callable[[DistributedTransaction], Generator[None, None, None]]


class _CrossScript:
    """Book-keeping for one submitted cross-shard script."""

    def __init__(
        self,
        name: str,
        script: CrossScript,
        relations: list[str],
        shard_ids: tuple[int, ...],
        max_attempts: int,
        slot: int,
    ):
        self.name = name
        self.script = script
        self.relations = relations
        self.shard_ids = shard_ids
        self.max_attempts = max_attempts
        self.slot = slot
        self.attempts = 0
        self.gtids: list[str] = []
        self.generator: Iterator[None] | None = None
        self.dtxn: DistributedTransaction | None = None
        self.backoff = 0

    def next_backoff(self) -> int:
        # Same stagger as the single-node schedulers (livelock avoidance).
        return min(2 * self.attempts + self.slot % 5, 24)

    def start(self, cluster: "ShardedDatabase") -> None:
        self.attempts += 1
        cluster.ensure_recovered(self.relations)
        self.dtxn = DistributedTransaction(
            cluster, cluster._mint_gtid(), self.shard_ids
        )
        cluster.twopc.register(self.dtxn)
        self.gtids.append(self.dtxn.gtid)
        self.generator = iter(self.script(self.dtxn))


class ShardedScheduler:
    """Routes a batch of scripts across the cluster and runs it.

    Keeps the single-node contract: submit, :meth:`run`, per-script
    :class:`~repro.txn.scheduler.ScriptResult` in submission order.
    """

    def __init__(
        self,
        cluster: "ShardedDatabase",
        max_attempts: int = 20,
        workers: int | None = None,
    ):
        if max_attempts < 1:
            raise SchedulerError("max_attempts must be at least 1")
        self.cluster = cluster
        self.max_attempts = max_attempts
        self.workers = workers
        #: Lazily-built per-node pools, reused across runs so their
        #: counters accumulate like a single node's scheduler stats.
        self._node_pools: dict[int, ConcurrentScheduler] = {}
        self._order: list[tuple[str, str]] = []  # (kind, name) in submission order
        self._cross: list[_CrossScript] = []
        self._single_count = 0
        self.cross_runs = 0
        self.cross_committed = 0
        self.cross_failed = 0
        self.cross_conflicts = 0

    # -- submission ---------------------------------------------------------------

    def _pool(self, shard_id: int) -> ConcurrentScheduler:
        pool = self._node_pools.get(shard_id)
        if pool is None:
            pool = ConcurrentScheduler(
                self.cluster.nodes[shard_id].db,
                max_attempts=self.max_attempts,
                workers=self.workers,
            )
            self._node_pools[shard_id] = pool
        return pool

    def submit(
        self, script, relations: list[str], name: str | None = None
    ) -> None:
        """Route one script by its declared access list and queue it."""
        shard_ids = self.cluster.router.route(relations)
        label = name if name is not None else f"script-{len(self._order)}"
        if len(shard_ids) == 1:
            self._pool(shard_ids[0]).submit(script, name=label)
            self._order.append(("single", label))
            self._single_count += 1
        else:
            self._cross.append(
                _CrossScript(
                    label,
                    script,
                    list(relations),
                    shard_ids,
                    self.max_attempts,
                    len(self._cross),
                )
            )
            self._order.append(("cross", label))

    # -- execution ----------------------------------------------------------------

    def run(self) -> list[ScriptResult]:
        """Run the batch: per-node pools first (parallel on a threaded
        cluster), then the cross-shard round-robin.  Results come back in
        submission order regardless of which lane ran a script."""
        results: dict[str, ScriptResult] = {}
        pools = [
            self._node_pools[sid]
            for sid in sorted(self._node_pools)
            if self._node_pools[sid]._scripts
        ]
        pool_results = fan_out(
            [pool.run for pool in pools], parallel=self.cluster.parallel
        )
        for batch in pool_results:
            for result in batch:
                results[result.name] = result
        for result in self._run_cross():
            results[result.name] = result
        ordered = [results[name] for _, name in self._order]
        self._order.clear()
        return ordered

    def _run_cross(self) -> list[ScriptResult]:
        submitted = list(self._cross)
        self._cross.clear()
        results: dict[str, ScriptResult] = {}
        pending = list(submitted)
        while pending:
            still_running: list[_CrossScript] = []
            for running in pending:
                if running.backoff > 0:
                    running.backoff -= 1
                    still_running.append(running)
                    continue
                outcome = self._step(running)
                if outcome == "running":
                    still_running.append(running)
                elif outcome == "retry":
                    self.cross_conflicts += 1
                    if running.attempts >= running.max_attempts:
                        self.cross_failed += 1
                        results[running.name] = ScriptResult(
                            running.name, False, running.attempts
                        )
                    else:
                        running.generator = None
                        running.dtxn = None
                        running.backoff = running.next_backoff()
                        still_running.append(running)
                else:  # committed
                    self.cross_committed += 1
                    results[running.name] = ScriptResult(
                        running.name, True, running.attempts
                    )
            pending = still_running
        if submitted:
            self.cluster.pump()
        self.cross_runs += 1 if submitted else 0
        return [results[s.name] for s in submitted]

    def _step(self, running: _CrossScript) -> str:
        if running.generator is None:
            running.start(self.cluster)
        dtxn = running.dtxn
        assert dtxn is not None
        try:
            next(running.generator)  # type: ignore[arg-type]
            return "running"
        except StopIteration:
            if dtxn.state == "active":
                self.cluster.twopc.commit_distributed(dtxn)
            return "committed"
        except TransactionAborted:
            # One branch lost a no-wait conflict and rolled itself back;
            # presumed abort settles the rest without logging anything.
            self.cluster.twopc.abort_distributed(dtxn)
            return "retry"
        except SimulatedCrash:
            raise
        except BaseException:
            self.cluster.twopc.abort_distributed(dtxn)
            raise

    # -- observability ------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "single_shard": {
                sid: pool.stats() for sid, pool in sorted(self._node_pools.items())
            },
            "cross_shard": {
                "runs": self.cross_runs,
                "committed": self.cross_committed,
                "failed": self.cross_failed,
                "conflicts": self.cross_conflicts,
            },
        }
