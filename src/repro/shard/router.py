"""The shard router: declared access lists → shard sets.

The paper's method-1 predeclaration (section 2.5) is a free routing
oracle: a transaction that names the relations it will touch has named
the shards it will touch.  The router owns the relation→shard map —
stable hash by default (``crc32(name) % shards``), explicit pins for
placement control — and turns a declared access list into the sorted
shard set the :class:`~repro.shard.ShardedDatabase` facade dispatches
on: one shard runs the transaction unchanged on that node, several run
it under 2PC.
"""

from __future__ import annotations

import threading
import zlib

from repro.common.errors import ReproError


class RoutingError(ReproError):
    """A placement or routing request the router cannot satisfy."""


class ShardRouter:
    """Maps relation names to shard ids; pure function of its placement.

    Deterministic: the same shard count and pin sequence always produce
    the same map, so a restarted cluster routes identically (the pins
    are re-derived from the facade's DDL replay, not persisted here).
    """

    def __init__(self, shards: int, placement: dict[str, int] | None = None):
        if shards < 1:
            raise RoutingError("a sharded topology needs at least one shard")
        self.shards = shards
        self._placement: dict[str, int] = {}  # guarded-by: _mutex
        #: Leaf lock around the placement map; DDL and routing may run
        #: from different scheduler threads.
        self._mutex = threading.Lock()
        for name, shard in (placement or {}).items():
            self.assign(name, shard)

    # -- placement ----------------------------------------------------------------

    def default_shard(self, name: str) -> int:
        """The stable-hash home of ``name`` (used absent an explicit pin)."""
        return zlib.crc32(name.encode("utf-8")) % self.shards

    def assign(self, name: str, shard: int | None = None) -> int:
        """Record ``name``'s home shard (explicit pin or stable hash)."""
        if shard is None:
            shard = self.default_shard(name)
        if not 0 <= shard < self.shards:
            raise RoutingError(
                f"shard {shard} out of range for {self.shards} shards"
            )
        with self._mutex:
            existing = self._placement.get(name)
            if existing is not None and existing != shard:
                raise RoutingError(
                    f"relation {name!r} is already placed on shard {existing}"
                )
            self._placement[name] = shard
        return shard

    def unassign(self, name: str) -> None:
        with self._mutex:
            self._placement.pop(name, None)

    def shard_of(self, name: str) -> int:
        """The shard owning ``name`` (pinned, else stable hash)."""
        with self._mutex:
            pinned = self._placement.get(name)
        return pinned if pinned is not None else self.default_shard(name)

    # -- routing ------------------------------------------------------------------

    def route(self, relations: list[str] | tuple[str, ...]) -> tuple[int, ...]:
        """The sorted shard set a declared access list touches.

        An empty declaration routes to shard 0 — the degenerate home that
        keeps ``shards=1`` behaviour identical to a standalone database.
        """
        if not relations:
            return (0,)
        return tuple(sorted({self.shard_of(name) for name in relations}))

    def is_single_shard(self, relations: list[str] | tuple[str, ...]) -> bool:
        return len(self.route(relations)) == 1

    # -- observability ------------------------------------------------------------

    def placement(self) -> dict[str, int]:
        with self._mutex:
            return dict(self._placement)

    def stats(self) -> dict:
        with self._mutex:
            per_shard = [0] * self.shards
            for shard in self._placement.values():
                per_shard[shard] += 1
            return {
                "shards": self.shards,
                "placed_relations": len(self._placement),
                "relations_per_shard": per_shard,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._mutex:
            placed = len(self._placement)
        return f"ShardRouter(shards={self.shards}, placed={placed})"
