"""A router-aware bank workload for sharded clusters.

Each shard owns an ``account<k>`` relation and a one-row ``ledger<k>``
relation (both pinned to shard *k*), so the placement is explicit and
the conservation law is checkable **per shard**:

    sum(balances on shard k) == accounts * initial + incoming_k - outgoing_k

where the ledger row's ``incoming``/``outgoing`` counters are updated
inside the same (distributed) transaction that moves the money.  Local
transfers route to one shard and run unchanged on that node; cross-shard
transfers declare both shards' relations and commit via 2PC.  Globally
``sum(incoming) == sum(outgoing)``, so total money is conserved across
the cluster no matter how many shards crash and recover in between.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.scheduler import ShardedScheduler
    from repro.shard.sharded import ShardedDatabase

ACCOUNT_SCHEMA = [("aid", "int"), ("balance", "int")]
LEDGER_SCHEMA = [("lid", "int"), ("incoming", "int"), ("outgoing", "int")]


class ShardedBankWorkload:
    """Builds the per-shard bank schema and generates transfer scripts."""

    def __init__(
        self,
        cluster: "ShardedDatabase",
        *,
        accounts_per_shard: int = 16,
        initial_balance: int = 1000,
        cross_ratio: float = 0.1,
        seed: int = 0,
    ):
        if not 0.0 <= cross_ratio <= 1.0:
            raise ValueError("cross_ratio must be within [0, 1]")
        self.cluster = cluster
        self.accounts_per_shard = accounts_per_shard
        self.initial_balance = initial_balance
        self.cross_ratio = cross_ratio
        self._rng = random.Random(seed)
        self._script_seq = 0

    # -- naming -------------------------------------------------------------------

    def account_name(self, shard: int) -> str:
        return f"account{shard}"

    def ledger_name(self, shard: int) -> str:
        return f"ledger{shard}"

    # -- setup --------------------------------------------------------------------

    def load(self) -> None:
        """Create and populate every shard's relations (explicit pins)."""
        cluster = self.cluster
        for shard in range(cluster.shards):
            account = cluster.create_relation(
                self.account_name(shard), ACCOUNT_SCHEMA, "aid", shard=shard
            )
            ledger = cluster.create_relation(
                self.ledger_name(shard), LEDGER_SCHEMA, "lid", shard=shard
            )
            with cluster.transaction(
                relations=[self.account_name(shard), self.ledger_name(shard)]
            ) as txn:
                for aid in range(self.accounts_per_shard):
                    account.insert(
                        txn, {"aid": aid, "balance": self.initial_balance}
                    )
                ledger.insert(txn, {"lid": 0, "incoming": 0, "outgoing": 0})

    # -- scripts ------------------------------------------------------------------

    def local_transfer_script(
        self, shard: int, src: int, dst: int, amount: int
    ):
        """Move ``amount`` between two accounts on one shard."""
        account = self.cluster.table(self.account_name(shard))

        def script(txn):
            row = account.lookup(txn, src)
            yield
            account.update(txn, row.address, {"balance": row["balance"] - amount})
            yield
            row2 = account.lookup(txn, dst)
            yield
            account.update(txn, row2.address, {"balance": row2["balance"] + amount})

        return script

    def cross_transfer_script(
        self, src_shard: int, dst_shard: int, src: int, dst: int, amount: int
    ):
        """Move ``amount`` across shards, ledgering both sides."""
        src_account = self.cluster.table(self.account_name(src_shard))
        src_ledger = self.cluster.table(self.ledger_name(src_shard))
        dst_account = self.cluster.table(self.account_name(dst_shard))
        dst_ledger = self.cluster.table(self.ledger_name(dst_shard))

        def script(txn):
            row = src_account.lookup(txn, src)
            yield
            src_account.update(
                txn, row.address, {"balance": row["balance"] - amount}
            )
            out = src_ledger.lookup(txn, 0)
            src_ledger.update(
                txn, out.address, {"outgoing": out["outgoing"] + amount}
            )
            yield
            row2 = dst_account.lookup(txn, dst)
            dst_account.update(
                txn, row2.address, {"balance": row2["balance"] + amount}
            )
            inc = dst_ledger.lookup(txn, 0)
            dst_ledger.update(
                txn, inc.address, {"incoming": inc["incoming"] + amount}
            )

        return script

    def next_script(self) -> tuple[object, list[str], str]:
        """One generated transfer: ``(script, declared relations, name)``."""
        rng = self._rng
        self._script_seq += 1
        name = f"xfer-{self._script_seq}"
        amount = rng.randint(1, 9)
        shards = self.cluster.shards
        cross = shards > 1 and rng.random() < self.cross_ratio
        if cross:
            src_shard, dst_shard = rng.sample(range(shards), 2)
            src = rng.randrange(self.accounts_per_shard)
            dst = rng.randrange(self.accounts_per_shard)
            script = self.cross_transfer_script(
                src_shard, dst_shard, src, dst, amount
            )
            relations = [
                self.account_name(src_shard),
                self.ledger_name(src_shard),
                self.account_name(dst_shard),
                self.ledger_name(dst_shard),
            ]
        else:
            shard = rng.randrange(shards)
            src, dst = rng.sample(range(self.accounts_per_shard), 2)
            script = self.local_transfer_script(shard, src, dst, amount)
            relations = [self.account_name(shard)]
        return script, relations, name

    def submit(self, scheduler: "ShardedScheduler", transactions: int) -> None:
        """Queue ``transactions`` generated transfers on a scheduler."""
        for _ in range(transactions):
            script, relations, name = self.next_script()
            scheduler.submit(script, relations=relations, name=name)

    # -- invariants ---------------------------------------------------------------

    def shard_totals(self, shard: int) -> dict:
        """One shard's balances and ledger counters (full-residency read)."""
        cluster = self.cluster
        account = cluster.table(self.account_name(shard))
        ledger = cluster.table(self.ledger_name(shard))
        with cluster.transaction(
            relations=[self.account_name(shard), self.ledger_name(shard)]
        ) as txn:
            balances = sum(row["balance"] for row in account.scan(txn))
            row = ledger.lookup(txn, 0)
            return {
                "balances": balances,
                "incoming": row["incoming"],
                "outgoing": row["outgoing"],
            }

    def check_invariants(self) -> dict:
        """Assert per-shard and global conservation; return the totals."""
        expected_base = self.accounts_per_shard * self.initial_balance
        totals = {}
        for shard in range(self.cluster.shards):
            t = self.shard_totals(shard)
            expected = expected_base + t["incoming"] - t["outgoing"]
            if t["balances"] != expected:
                raise AssertionError(
                    f"shard {shard} conservation broken: balances "
                    f"{t['balances']} != {expected_base} + {t['incoming']} "
                    f"- {t['outgoing']}"
                )
            totals[shard] = t
        grand = sum(t["balances"] for t in totals.values())
        if grand != expected_base * self.cluster.shards:
            raise AssertionError(
                f"global conservation broken: {grand} != "
                f"{expected_base * self.cluster.shards}"
            )
        incoming = sum(t["incoming"] for t in totals.values())
        outgoing = sum(t["outgoing"] for t in totals.values())
        if incoming != outgoing:
            raise AssertionError(
                f"ledger mismatch: incoming {incoming} != outgoing {outgoing}"
            )
        return totals
