"""Deterministic access-skew distributions.

Both pickers are seeded and pure-Python so workloads replay identically
across runs and platforms — a requirement for crash-point reproducibility
in the recovery experiments.
"""

from __future__ import annotations

import bisect
import random


class UniformPicker:
    """Uniform choice over ``range(n)``."""

    def __init__(self, n: int, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self._rng = random.Random(seed)

    def pick(self) -> int:
        return self._rng.randrange(self.n)


class ZipfPicker:
    """Zipf-distributed choice over ``range(n)``.

    ``theta`` is the skew exponent: 0 is uniform, ~0.99 is the classic
    TPC-C-style skew where a few hot items absorb most accesses.  Sampling
    is by inverse CDF over the precomputed harmonic weights, O(log n) per
    pick.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta cannot be negative")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        cdf = []
        total = 0.0
        for rank in range(1, n + 1):
            total += 1.0 / (rank**theta)
            cdf.append(total)
        self._cdf = [value / total for value in cdf]

    def pick(self) -> int:
        point = self._rng.random()
        return bisect.bisect_left(self._cdf, point)

    def hot_fraction(self, top: int) -> float:
        """Probability mass carried by the ``top`` hottest items."""
        if top <= 0:
            return 0.0
        if top >= self.n:
            return 1.0
        return self._cdf[top - 1]
