"""Gray's debit/credit workload (the ET1/TP1 ancestor of TPC-A).

Section 3.2 uses "Gray's debit/credit transaction" — roughly four log
records per transaction — as the reference point for the 4,000
transactions-per-second capacity claim.  The workload here is the
classical shape: update one account, its teller, its branch, and append a
history record.

The schema is deliberately lean (all-int accounts) so a debit/credit
transaction produces log traffic close to the paper's four-record
assumption plus index-component records.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.workloads.distributions import UniformPicker, ZipfPicker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database


class DebitCreditWorkload:
    """Builds the bank schema and runs debit/credit transactions."""

    def __init__(
        self,
        db: "Database",
        *,
        branches: int = 2,
        tellers_per_branch: int = 5,
        accounts_per_branch: int = 100,
        skew_theta: float = 0.0,
        seed: int = 0,
        keep_history: bool = True,
    ):
        self.db = db
        self.branches = branches
        self.tellers = branches * tellers_per_branch
        self.accounts = branches * accounts_per_branch
        self.keep_history = keep_history
        self._account_addr: dict[int, object] = {}
        self._teller_addr: dict[int, object] = {}
        self._branch_addr: dict[int, object] = {}
        self._history_id = 0
        if skew_theta > 0:
            self._picker = ZipfPicker(self.accounts, skew_theta, seed)
        else:
            self._picker = UniformPicker(self.accounts, seed)
        self.transactions_run = 0

    # -- setup --------------------------------------------------------------------

    def load(self) -> None:
        """Create and populate the four relations."""
        db = self.db
        self.branch_rel = db.create_relation(
            "branch", [("bid", "int"), ("balance", "int")], primary_key="bid"
        )
        self.teller_rel = db.create_relation(
            "teller",
            [("tid", "int"), ("bid", "int"), ("balance", "int")],
            primary_key="tid",
        )
        self.account_rel = db.create_relation(
            "account",
            [("aid", "int"), ("bid", "int"), ("balance", "int")],
            primary_key="aid",
        )
        if self.keep_history:
            self.history_rel = db.create_relation(
                "history",
                [("hid", "int"), ("aid", "int"), ("delta", "int")],
                primary_key="hid",
            )
        with db.transaction() as txn:
            for bid in range(self.branches):
                self._branch_addr[bid] = self.branch_rel.insert(
                    txn, {"bid": bid, "balance": 0}
                )
            for tid in range(self.tellers):
                self._teller_addr[tid] = self.teller_rel.insert(
                    txn, {"tid": tid, "bid": tid % self.branches, "balance": 0}
                )
            for aid in range(self.accounts):
                self._account_addr[aid] = self.account_rel.insert(
                    txn, {"aid": aid, "bid": aid % self.branches, "balance": 1000}
                )

    # -- one transaction -------------------------------------------------------------

    def run_transaction(self, delta: int = 10, *, pump: bool = True) -> int:
        """One debit/credit: returns the account id touched."""
        db = self.db
        aid = self._picker.pick()
        tid = aid % self.tellers
        bid = aid % self.branches
        with db.transaction(pump=pump) as txn:
            account = self.account_rel.read(txn, self._account_addr[aid])
            self.account_rel.update(
                txn, self._account_addr[aid], {"balance": account["balance"] + delta}
            )
            teller = self.teller_rel.read(txn, self._teller_addr[tid])
            self.teller_rel.update(
                txn, self._teller_addr[tid], {"balance": teller["balance"] + delta}
            )
            branch = self.branch_rel.read(txn, self._branch_addr[bid])
            self.branch_rel.update(
                txn, self._branch_addr[bid], {"balance": branch["balance"] + delta}
            )
            if self.keep_history:
                self._history_id += 1
                self.history_rel.insert(
                    txn, {"hid": self._history_id, "aid": aid, "delta": delta}
                )
        self.transactions_run += 1
        return aid

    def run(self, transactions: int, delta: int = 10, *, pump: bool = True) -> None:
        for _ in range(transactions):
            self.run_transaction(delta, pump=pump)

    # -- invariant ---------------------------------------------------------------------

    def total_balance(self) -> int:
        """Money conservation check: accounts total = initial + all deltas."""
        with self.db.transaction() as txn:
            return sum(row["balance"] for row in self.account_rel.scan(txn))
