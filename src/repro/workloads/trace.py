"""Replayable operation traces.

A :class:`TraceRecorder` wraps a relation and writes every successful
operation (with its transaction boundaries) to a JSON-serialisable trace;
:func:`replay_trace` re-executes a trace against a fresh database.  Two
uses:

* **debugging** — capture the exact operation sequence that produced a
  state, replay it deterministically elsewhere;
* **crash-point bisection** — replay a prefix of the trace, crash, and
  recover; the recovered state must equal replaying the same prefix
  without a crash (used by the trace tests as yet another recovery
  oracle).

Traces identify tuples by primary key, not by entity address, so they
replay on any database with a compatible schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database
    from repro.db.relation import Relation
    from repro.txn.transaction import Transaction


class TraceError(ReproError):
    """A trace could not be replayed (schema mismatch, bad event)."""


@dataclass
class Trace:
    """An ordered list of committed-transaction event groups."""

    relation: str
    schema: list[list[str]]
    primary_key: str
    transactions: list[list[dict]] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(
            {
                "relation": self.relation,
                "schema": self.schema,
                "primary_key": self.primary_key,
                "transactions": self.transactions,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        doc = json.loads(text)
        return cls(
            relation=doc["relation"],
            schema=doc["schema"],
            primary_key=doc["primary_key"],
            transactions=doc["transactions"],
        )

    @property
    def operation_count(self) -> int:
        return sum(len(group) for group in self.transactions)


class TraceRecorder:
    """Records operations against one relation, grouped by transaction."""

    def __init__(self, relation: "Relation"):
        self.relation = relation
        descriptor = relation.descriptor
        self.trace = Trace(
            relation=relation.name,
            schema=[[f.name, f.type.value] for f in descriptor.schema],
            primary_key=descriptor.primary_key,
        )
        self._current: list[dict] | None = None

    # -- transaction grouping -------------------------------------------------

    def begin(self) -> None:
        if self._current is not None:
            raise TraceError("previous trace transaction still open")
        self._current = []

    def commit(self) -> None:
        if self._current is None:
            raise TraceError("no open trace transaction")
        self.trace.transactions.append(self._current)
        self._current = None

    def rollback(self) -> None:
        """Discard the open group (the transaction aborted)."""
        self._current = None

    # -- recorded operations -----------------------------------------------------

    def _event(self, event: dict) -> None:
        if self._current is None:
            raise TraceError("operation recorded outside a trace transaction")
        self._current.append(event)

    def insert(self, txn: "Transaction", row: dict):
        address = self.relation.insert(txn, row)
        self._event({"op": "insert", "row": _encode_row(row)})
        return address

    def update(self, txn: "Transaction", key, changes: dict) -> None:
        row = self.relation.lookup(txn, key)
        if row is None:
            raise TraceError(f"update of missing key {key!r}")
        self.relation.update(txn, row.address, changes)
        self._event({"op": "update", "key": key, "changes": _encode_row(changes)})

    def delete(self, txn: "Transaction", key) -> None:
        row = self.relation.lookup(txn, key)
        if row is None:
            raise TraceError(f"delete of missing key {key!r}")
        self.relation.delete(txn, row.address)
        self._event({"op": "delete", "key": key})


def replay_trace(
    db: "Database",
    trace: Trace,
    *,
    transactions: int | None = None,
    create_relation: bool = True,
) -> int:
    """Re-execute a trace; returns the number of transactions replayed.

    ``transactions`` bounds the replay to a prefix (crash-point
    bisection); ``create_relation=False`` replays onto an existing,
    schema-compatible relation.
    """
    if create_relation:
        relation = db.create_relation(
            trace.relation,
            [(name, type_name) for name, type_name in trace.schema],
            primary_key=trace.primary_key,
        )
    else:
        relation = db.table(trace.relation)
        actual = [[f.name, f.type.value] for f in relation.descriptor.schema]
        if actual != trace.schema:
            raise TraceError(
                f"schema mismatch: trace {trace.schema} vs relation {actual}"
            )
    limit = len(trace.transactions) if transactions is None else transactions
    replayed = 0
    for group in trace.transactions[:limit]:
        with db.transaction() as txn:
            for event in group:
                _apply_event(relation, txn, event)
        replayed += 1
    return replayed


def _apply_event(relation: "Relation", txn: "Transaction", event: dict) -> None:
    op = event.get("op")
    if op == "insert":
        relation.insert(txn, _decode_row(relation, event["row"]))
    elif op == "update":
        row = relation.lookup(txn, event["key"])
        if row is None:
            raise TraceError(f"replay: missing key {event['key']!r}")
        relation.update(txn, row.address, _decode_row(relation, event["changes"]))
    elif op == "delete":
        row = relation.lookup(txn, event["key"])
        if row is None:
            raise TraceError(f"replay: missing key {event['key']!r}")
        relation.delete(txn, row.address)
    else:
        raise TraceError(f"unknown trace event {op!r}")


def _encode_row(row: dict) -> dict:
    out = {}
    for key, value in row.items():
        if isinstance(value, bytes):
            out[key] = {"__bytes__": value.hex()}
        else:
            out[key] = value
    return out


def _decode_row(relation: "Relation", row: dict) -> dict:
    out = {}
    for key, value in row.items():
        if isinstance(value, dict) and "__bytes__" in value:
            out[key] = bytes.fromhex(value["__bytes__"])
        else:
            out[key] = value
    return out
