"""Workload generators for the examples and benchmarks.

* :mod:`repro.workloads.distributions` — deterministic uniform / Zipf
  access-skew generators.
* :mod:`repro.workloads.debit_credit` — Gray's debit/credit workload
  (the paper's reference transaction: about four log records each).
* :mod:`repro.workloads.generator` — a generic mixed-operation driver.
* :mod:`repro.workloads.sharded_bank` — per-shard bank accounts with
  ledgered cross-shard transfers (conservation checkable per shard).
"""

from repro.workloads.distributions import UniformPicker, ZipfPicker
from repro.workloads.debit_credit import DebitCreditWorkload
from repro.workloads.generator import MixedWorkload, OperationMix
from repro.workloads.sharded_bank import ShardedBankWorkload
from repro.workloads.trace import Trace, TraceRecorder, replay_trace

__all__ = [
    "DebitCreditWorkload",
    "MixedWorkload",
    "OperationMix",
    "ShardedBankWorkload",
    "Trace",
    "TraceRecorder",
    "UniformPicker",
    "ZipfPicker",
    "replay_trace",
]
