"""A generic mixed-operation workload driver.

Used by the checkpoint and recovery benchmarks to produce controlled
update streams over a configurable number of partitions with configurable
skew — the knobs that determine the paper's checkpoint-trigger mix
(section 3.3) and post-crash working set (section 3.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.workloads.distributions import UniformPicker, ZipfPicker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database
    from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class OperationMix:
    """Relative operation weights (need not sum to one)."""

    update: float = 0.8
    insert: float = 0.1
    delete: float = 0.05
    lookup: float = 0.05

    def normalised(self) -> list[tuple[str, float]]:
        total = self.update + self.insert + self.delete + self.lookup
        if total <= 0:
            raise ValueError("operation mix must have positive total weight")
        return [
            ("update", self.update / total),
            ("insert", self.insert / total),
            ("delete", self.delete / total),
            ("lookup", self.lookup / total),
        ]


class MixedWorkload:
    """Drives a single ``items`` relation with a keyed operation mix."""

    def __init__(
        self,
        db: "Database",
        *,
        initial_rows: int = 500,
        mix: OperationMix | None = None,
        skew_theta: float = 0.0,
        ops_per_transaction: int = 5,
        seed: int = 0,
        relation_name: str = "items",
    ):
        self.db = db
        self.mix = mix if mix is not None else OperationMix()
        self.ops_per_transaction = ops_per_transaction
        self.relation_name = relation_name
        self._rng = random.Random(seed)
        self._next_key = initial_rows
        self._live: dict[int, object] = {}
        self._initial_rows = initial_rows
        if skew_theta > 0:
            self._picker = ZipfPicker(max(initial_rows, 1), skew_theta, seed)
        else:
            self._picker = UniformPicker(max(initial_rows, 1), seed)
        self.operations_run = 0
        self.transactions_run = 0

    def load(self) -> None:
        self.relation = self.db.create_relation(
            self.relation_name,
            [("key", "int"), ("value", "int"), ("payload", "str")],
            primary_key="key",
        )
        with self.db.transaction() as txn:
            for key in range(self._initial_rows):
                self._live[key] = self.relation.insert(
                    txn, {"key": key, "value": 0, "payload": f"row-{key}"}
                )

    def _pick_live_key(self) -> int | None:
        if not self._live:
            return None
        for _ in range(8):
            key = self._picker.pick()
            if key in self._live:
                return key
        return self._rng.choice(sorted(self._live))

    def run_transaction(self, *, pump: bool = True) -> None:
        weights = self.mix.normalised()
        with self.db.transaction(pump=pump) as txn:
            for _ in range(self.ops_per_transaction):
                op = self._choose(weights)
                self._run_op(txn, op)
                self.operations_run += 1
        self.transactions_run += 1

    def _choose(self, weights: list[tuple[str, float]]) -> str:
        point = self._rng.random()
        cumulative = 0.0
        for name, weight in weights:
            cumulative += weight
            if point < cumulative:
                return name
        return weights[-1][0]

    def _run_op(self, txn: "Transaction", op: str) -> None:
        if op == "insert" or (op != "lookup" and not self._live):
            key = self._next_key
            self._next_key += 1
            self._live[key] = self.relation.insert(
                txn, {"key": key, "value": 0, "payload": f"row-{key}"}
            )
            return
        key = self._pick_live_key()
        if key is None:
            return
        address = self._live[key]
        if op == "update":
            self.relation.update(
                txn, address, {"value": self._rng.randrange(1_000_000)}
            )
        elif op == "delete":
            self.relation.delete(txn, address)
            del self._live[key]
        else:  # lookup
            self.relation.read(txn, address)

    def run(self, transactions: int, *, pump: bool = True) -> None:
        for _ in range(transactions):
            self.run_transaction(pump=pump)

    @property
    def live_rows(self) -> int:
        return len(self._live)
