"""repro — a reproduction of Lehman & Carey's SIGMOD 1987 recovery
algorithm for a high-performance memory-resident database system.

Quickstart::

    from repro import Database, RecoveryMode

    db = Database()
    accounts = db.create_relation(
        "accounts", [("id", "int"), ("balance", "int"), ("owner", "str")],
        primary_key="id",
    )
    with db.transaction() as txn:
        accounts.insert(txn, {"id": 1, "balance": 100, "owner": "alice"})

    db.crash()
    db.restart(RecoveryMode.ON_DEMAND)
    with db.transaction() as txn:
        row = db.table("accounts").lookup(txn, 1)
        assert row["balance"] == 100

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.common.config import AnalysisParameters, DiskParameters, SystemConfig
from repro.common.types import EntityAddress, PartitionAddress, SegmentKind
from repro.db.database import Database, RecoveryMode
from repro.db.relation import Relation, Row, UniqueViolation

__version__ = "1.0.0"

__all__ = [
    "AnalysisParameters",
    "Database",
    "DiskParameters",
    "EntityAddress",
    "PartitionAddress",
    "RecoveryMode",
    "Relation",
    "Row",
    "SegmentKind",
    "SystemConfig",
    "UniqueViolation",
    "__version__",
]
