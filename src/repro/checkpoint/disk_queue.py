"""The checkpoint disks as a pseudo-circular queue of partition slots.

Section 2.4: checkpoint images are written to the first available location
at the head of the queue rather than to per-partition home slots (which
would cost a seek to a fixed location every time).  Rarely-checkpointed
partitions keep their old slot and are skipped as the head passes by —
hence *pseudo*-circular.  New images never overwrite old ones; the old
slot is freed only after the checkpoint transaction commits.

The allocation map is volatile here (it is rebuilt from the catalogs at
restart, where the paper also keeps it); concurrent checkpoint
transactions serialise on a write latch exactly as the paper requires.
"""

from __future__ import annotations

import threading

from repro.common.checksum import open_frame, seal_frame
from repro.common.errors import CheckpointError
from repro.concurrency.latch import Latch
from repro.sim.chaos import (
    crash_point,
    fault_point,
    register_crash_point,
    register_fault_point,
)
from repro.sim.disk import SimulatedDisk
from repro.sim.faults import RetryPolicy, TransientIOStats, run_with_retry

register_crash_point(
    "checkpoint.image.before-write",
    "slot allocated and installed, image not yet on the checkpoint disk",
)
register_crash_point(
    "checkpoint.image.after-write",
    "image durable in its slot, checkpoint transaction not yet committed",
)
register_fault_point(
    "checkpoint.image.write",
    "transient controller fault on a checkpoint-image track write",
)
register_fault_point(
    "checkpoint.image.read",
    "transient controller fault on a checkpoint-image track read",
)


class CheckpointDiskQueue:
    """Slot allocator plus image I/O on the checkpoint disk."""

    def __init__(
        self,
        disk: SimulatedDisk,
        slots: int,
        retry_policy: RetryPolicy | None = None,
    ):
        if slots <= 0:
            raise CheckpointError("checkpoint disk needs at least one slot")
        self.disk = disk
        self.slots = slots
        #: Transient device faults are retried within this budget and
        #: escalate to ``MediaFailure`` past it; counters land in
        #: ``Database.stats()["transient_io"]["checkpoint"]``.
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.io_stats = TransientIOStats()
        self.map_latch = Latch("checkpoint-disk-map")
        self._occupied: set[int] = set()  # guarded-by: _mutex
        self._head = 0  # guarded-by: _mutex
        #: Guards the allocation map between restore workers (free /
        #: is_occupied) and checkpoint transactions (allocate).  Lock
        #: order: ``_mutex`` → ``map_latch``.
        self._mutex = threading.RLock()

    # -- allocation --------------------------------------------------------------

    def allocate(self, owner: int) -> int:
        """Claim the next free slot at the head of the queue.

        ``owner`` identifies the checkpoint transaction for the map latch.
        """
        with self._mutex, self.map_latch.held_by(owner):
            for _ in range(self.slots):
                slot = self._head
                self._head = (self._head + 1) % self.slots
                if slot not in self._occupied:
                    self._occupied.add(slot)
                    return slot
        raise CheckpointError("checkpoint disk is full: no free slots")

    def free(self, slot: int) -> None:
        with self._mutex:
            self._occupied.discard(slot)
        self.disk.free(slot)

    def rebuild_map(self, occupied: set[int]) -> None:
        """Post-crash: reconstruct the allocation map from the catalogs."""
        with self._mutex:
            self._occupied = set(occupied)
            self._head = 0

    # -- image I/O -----------------------------------------------------------------

    def write_image(self, slot: int, image: bytes) -> None:
        """Partitions are written in whole tracks (double transfer rate).

        Images are CRC32-framed so corruption is detected at read time
        and recovery can fall back to full-history log replay.
        """
        with self._mutex:
            if slot not in self._occupied:
                raise CheckpointError(f"slot {slot} was not allocated")
        framed = seal_frame(image)
        # Fault hook and primitive write share one lambda so the retry
        # wrapper re-runs both; past-budget faults escalate to
        # MediaFailure and the media-rescue paths take over.
        crash_point("checkpoint.image.before-write")
        run_with_retry(
            lambda: (
                fault_point("checkpoint.image.write"),
                self.disk.write_track(slot, framed),
            ),
            self.retry_policy,
            self.io_stats,
            "write",
            f"checkpoint-image write to slot {slot}",
        )
        crash_point("checkpoint.image.after-write")

    def read_image(self, slot: int) -> bytes:
        """Read and verify one image; raises
        :class:`~repro.common.errors.ChecksumError` on corruption."""
        blob = run_with_retry(
            lambda: (
                fault_point("checkpoint.image.read"),
                self.disk.read_track(slot),
            )[1],
            self.retry_policy,
            self.io_stats,
            "read",
            f"checkpoint-image read from slot {slot}",
        )
        return open_frame(blob, context=f"checkpoint slot {slot}")

    # -- inspection -------------------------------------------------------------------

    @property
    def occupied_count(self) -> int:
        with self._mutex:
            return len(self._occupied)

    def is_occupied(self, slot: int) -> bool:
        with self._mutex:
            return slot in self._occupied
