"""The checkpoint request queue: the processors' communication buffer.

Section 2.4: the recovery manager enters a partition address plus a status
flag in the Stable Log Buffer; the flag starts in the *request* state,
moves to *in-progress* while the checkpoint transaction runs, and reaches
*finished* after that transaction commits.  A finished entry tells the
recovery CPU to flush the partition's remaining log information and reset
its bin.

The queue lives in the SLB's well-known area, so it survives crashes.
After a crash, in-progress entries revert to request (their checkpoint
transaction died uncommitted) and finished entries are completed by the
recovery CPU as usual.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass

from repro.common.types import NULL_LSN, PartitionAddress
from repro.wal.slb import StableLogBuffer

_QUEUE_KEY = "checkpoint-requests"


class RequestState(enum.Enum):
    REQUEST = "request"
    IN_PROGRESS = "in-progress"
    FINISHED = "finished"


@dataclass
class CheckpointRequest:
    partition: PartitionAddress
    bin_index: int
    reason: str
    state: RequestState = RequestState.REQUEST
    #: Slot holding the superseded image, freed once the checkpoint is
    #: fully acknowledged (new copies never overwrite old ones).
    previous_slot: int | None = None
    #: True when the checkpoint was satisfied by *flipping* a condensed
    #: shadow image into the catalog instead of copying the partition
    #: (docs/CONDENSING.md).  Tells the acknowledgement to reset the bin
    #: relative to ``flip_lsn`` rather than clearing it outright.
    flip: bool = False
    #: The shadow's watermark captured at the flip decision — the bin keeps
    #: everything newer.  Captured *at decision time* so a slice published
    #: while the flip transaction was in flight cannot widen the cut.
    flip_lsn: int = NULL_LSN


class CheckpointQueue:
    """FIFO of checkpoint requests stored in stable memory."""

    #: Guards the shared entry list between the recovery thread (submit,
    #: finished-scan) and the main CPU's checkpoint transactions.  One
    #: class-level lock — the queue itself lives in stable memory and is
    #: re-wrapped by a fresh CheckpointQueue after every crash, while the
    #: threads span those instances.
    _mutex = threading.RLock()

    def __init__(self, slb: StableLogBuffer):
        self._slb = slb
        with self._mutex:
            if slb.get_well_known(_QUEUE_KEY) is None:
                slb.put_well_known(_QUEUE_KEY, [])

    def _entries(self) -> list[CheckpointRequest]:
        return self._slb.get_well_known(_QUEUE_KEY)  # type: ignore[return-value]

    def submit(self, partition: PartitionAddress, bin_index: int, reason: str) -> None:
        """Recovery CPU: enter a checkpoint request (deduplicated)."""
        with self._mutex:
            if any(entry.partition == partition for entry in self._entries()):
                return
            self._entries().append(CheckpointRequest(partition, bin_index, reason))

    def pending(self) -> list[CheckpointRequest]:
        with self._mutex:
            return [e for e in self._entries() if e.state is RequestState.REQUEST]

    def finished(self) -> list[CheckpointRequest]:
        with self._mutex:
            return [e for e in self._entries() if e.state is RequestState.FINISHED]

    def in_flight(self) -> list[CheckpointRequest]:
        """Entries whose checkpoint has started (in-progress or awaiting
        acknowledgement).  The condenser must not extend a chain under
        these — the imminent bin reset would race the publish — while a
        merely *queued* request is fair game: condensing it further is
        exactly what turns the eventual checkpoint into a pointer flip."""
        with self._mutex:
            return [
                e for e in self._entries() if e.state is not RequestState.REQUEST
            ]

    def remove(self, request: CheckpointRequest) -> None:
        with self._mutex:
            self._entries().remove(request)

    def finish_for(
        self,
        partition: PartitionAddress,
        bin_index: int,
        previous_slot: int | None,
        reason: str = "sweep",
    ) -> None:
        """Mark the entry for ``partition`` FINISHED, creating one if none
        exists: a group settlement sweep checkpoints every partition of a
        declared closure, including ones that never requested it, and each
        copied partition needs a FINISHED entry so the recovery CPU flushes
        its leftovers and resets its bin."""
        with self._mutex:
            for entry in self._entries():
                if entry.partition == partition:
                    entry.state = RequestState.FINISHED
                    entry.previous_slot = previous_slot
                    return
            self._entries().append(
                CheckpointRequest(
                    partition, bin_index, reason, RequestState.FINISHED, previous_slot
                )
            )

    def revert_in_progress(self) -> int:
        """Post-crash: in-progress checkpoints died with the main CPU."""
        with self._mutex:
            reverted = 0
            for entry in self._entries():
                if entry.state is RequestState.IN_PROGRESS:
                    entry.state = RequestState.REQUEST
                    entry.previous_slot = None
                    entry.flip = False
                    entry.flip_lsn = NULL_LSN
                    reverted += 1
            return reverted

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries())
