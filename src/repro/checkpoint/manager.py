"""Checkpoint transactions on the main CPU.

Section 2.4's seven-step procedure, executed between regular transactions
when the transaction manager polls the request queue:

1. (recovery CPU) request entered in the Stable Log Buffer.
2. main CPU finds the request, starts a checkpoint transaction, flips the
   flag to in-progress.
3. the checkpoint transaction read-locks the partition's *relation* — one
   relation read lock covers its tuple and index partitions, so only
   committed, transaction-consistent data is copied.
4. the partition is copied to a side buffer at memory speed and the lock
   is released immediately (minimal interference).
5. the disk-map and catalog updates are logged *before* the image write.
6. the image goes to a fresh slot (never overwriting the old image) and
   the checkpoint transaction commits, which atomically installs the new
   location and flips the flag to finished.
7. (recovery CPU) sees finished, flushes the partition's leftover log
   records to the log disk, and resets its bin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import CatalogError, NotResidentError, TransactionAborted
from repro.concurrency.locks import LockMode
from repro.checkpoint.protocol import CheckpointRequest, RequestState
from repro.sim.chaos import crash_point, register_crash_point

register_crash_point(
    "checkpoint.begin",
    "step 2: request found, before the checkpoint transaction starts",
)
register_crash_point(
    "checkpoint.locked",
    "step 3: relation read lock held, partition not yet copied",
)
register_crash_point(
    "checkpoint.copied",
    "step 4: partition copied to the side buffer, lock released",
)
register_crash_point(
    "checkpoint.slot-installed",
    "step 5: catalog/disk-map updates logged, image not yet written",
)
register_crash_point(
    "checkpoint.image-written",
    "step 6a: image durable in its fresh slot, transaction uncommitted",
)
register_crash_point(
    "checkpoint.committed",
    "step 6b: checkpoint transaction committed, flag not yet FINISHED",
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database

#: Instructions charged to the main CPU per byte of partition copy.
COPY_INSTRUCTIONS_PER_BYTE = 0.125


class CheckpointManager:
    """Executes pending checkpoint requests (main-CPU side)."""

    def __init__(self, db: "Database"):
        self.db = db
        self.checkpoints_taken = 0
        self.checkpoints_deferred = 0

    def process_pending(self, limit: int | None = None) -> int:
        """Run checkpoint transactions for queued requests.

        Returns the number completed.  Requests whose relation lock is
        unavailable or whose partition is not yet memory-resident are left
        queued for a later pass.
        """
        done = 0
        for request in self.db.checkpoint_queue.pending():
            if limit is not None and done >= limit:
                break
            if self._run_one(request):
                done += 1
        return done

    def _run_one(self, request: CheckpointRequest) -> bool:
        db = self.db
        crash_point("checkpoint.begin")
        request.state = RequestState.IN_PROGRESS
        txn = db.transactions.begin(system=True)
        try:
            lock_segment = self._lock_segment_for(request)
            txn.lock_relation(lock_segment, LockMode.SHARED)
            crash_point("checkpoint.locked")
            partition = db.memory.partition(request.partition)
            # Step 4: copy at memory speed, then release the lock at once.
            image = partition.to_bytes()
            db.main_cpu.charge(
                COPY_INSTRUCTIONS_PER_BYTE * len(image), "checkpoint-copy"
            )
            db.locks.release(txn.txn_id, ("rel", lock_segment))
            crash_point("checkpoint.copied")
            # Step 5: log the catalog / disk-map updates before the write.
            slot = db.checkpoint_disk.allocate(txn.txn_id)
            request.previous_slot = self._install_slot(request, slot, txn)
            crash_point("checkpoint.slot-installed")
            # Step 6: write the image and commit.
            db.checkpoint_disk.write_image(slot, image)
            if request.partition.segment == db.catalog.segment.segment_id:
                # Publish the catalog's own new location only once the
                # image is durable: the well-known areas are not logged,
                # so an earlier publish would dangle if we crashed here.
                db.publish_catalog_locations()
            crash_point("checkpoint.image-written")
            txn.commit()
            crash_point("checkpoint.committed")
        except (TransactionAborted, NotResidentError):
            # lock conflict or partition awaiting recovery: retry later
            if txn.state.value == "active":
                txn.abort()
            request.state = RequestState.REQUEST
            request.previous_slot = None
            self.checkpoints_deferred += 1
            return False
        request.state = RequestState.FINISHED
        self.checkpoints_taken += 1
        return True

    def _lock_segment_for(self, request: CheckpointRequest) -> int:
        """The segment whose relation-level lock covers this partition."""
        segment_id = request.partition.segment
        if segment_id == self.db.catalog.segment.segment_id:
            return segment_id  # catalog partitions lock the catalog itself
        relation = self.db.catalog.relation_of_segment(segment_id)
        return relation.segment_id

    def _install_slot(
        self, request: CheckpointRequest, slot: int, txn
    ) -> int | None:
        """Record the new checkpoint location in the catalogs (logged).

        Returns the superseded slot (freed after the acknowledgement).
        Catalog partitions keep their locations in the well-known stable
        areas instead, duplicated in the SLB and the SLT (section 2.4
        step 5 / section 2.5).
        """
        db = self.db
        segment_id = request.partition.segment
        number = request.partition.partition
        if segment_id == db.catalog.segment.segment_id:
            previous = db.catalog.own_partition_slots.get(number)
            db.catalog.own_partition_slots[number] = slot
            # well-known publish is deferred to after the image write
            return previous
        descriptor = db.catalog.descriptor_for_segment(segment_id)
        info = descriptor.partitions.get(number)
        if info is None:
            raise CatalogError(
                f"{request.partition} is not catalogued under {descriptor.name!r}"
            )
        previous = info.checkpoint_slot
        info.checkpoint_slot = slot
        db.catalog.update(descriptor, txn)
        return previous

    # -- restart support -------------------------------------------------------------

    def occupied_slots(self) -> set[int]:
        """Every slot referenced by the catalogs (for map rebuild)."""
        occupied: set[int] = set()
        for descriptor in list(self.db.catalog.relations()) + list(
            self.db.catalog.indexes()
        ):
            for info in descriptor.partitions.values():
                if info.checkpoint_slot is not None:
                    occupied.add(info.checkpoint_slot)
        for slot in self.db.catalog.own_partition_slots.values():
            if slot is not None:
                occupied.add(slot)
        return occupied
