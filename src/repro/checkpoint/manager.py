"""Checkpoint transactions on the main CPU.

Section 2.4's seven-step procedure, executed between regular transactions
when the transaction manager polls the request queue:

1. (recovery CPU) request entered in the Stable Log Buffer.
2. main CPU finds the request, starts a checkpoint transaction, flips the
   flag to in-progress.
3. the checkpoint transaction read-locks the partition's *relation* — one
   relation read lock covers its tuple and index partitions, so only
   committed, transaction-consistent data is copied.
4. the partition is copied to a side buffer at memory speed and the lock
   is released immediately (minimal interference).
5. the disk-map and catalog updates are logged *before* the image write.
6. the image goes to a fresh slot (never overwriting the old image) and
   the checkpoint transaction commits, which atomically installs the new
   location and flips the flag to finished.
7. (recovery CPU) sees finished, flushes the partition's leftover log
   records to the log disk, and resets its bin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import CatalogError, NotResidentError, TransactionAborted
from repro.common.types import PartitionAddress
from repro.concurrency.locks import LockMode
from repro.checkpoint.protocol import CheckpointRequest, RequestState
from repro.recovery.replay_plan import decode_live_commands, relation_closure
from repro.sim.chaos import crash_point, register_crash_point
from repro.wal.records import SweepMarker, TxnCommand

register_crash_point(
    "checkpoint.begin",
    "step 2: request found, before the checkpoint transaction starts",
)
register_crash_point(
    "checkpoint.locked",
    "step 3: relation read lock held, partition not yet copied",
)
register_crash_point(
    "checkpoint.copied",
    "step 4: partition copied to the side buffer, lock released",
)
register_crash_point(
    "checkpoint.slot-installed",
    "step 5: catalog/disk-map updates logged, image not yet written",
)
register_crash_point(
    "checkpoint.image-written",
    "step 6a: image durable in its fresh slot, transaction uncommitted",
)
register_crash_point(
    "checkpoint.committed",
    "step 6b: checkpoint transaction committed, flag not yet FINISHED",
)
register_crash_point(
    "checkpoint.sweep.markers-appended",
    "sweep: per-partition markers on the chain, transaction uncommitted",
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database

#: Instructions charged to the main CPU per byte of partition copy.
COPY_INSTRUCTIONS_PER_BYTE = 0.125


class CheckpointManager:
    """Executes pending checkpoint requests (main-CPU side)."""

    def __init__(self, db: "Database"):
        self.db = db
        self.checkpoints_taken = 0
        self.checkpoints_deferred = 0
        self.sweeps_taken = 0
        self.commands_settled = 0
        #: Checkpoints satisfied by installing a condensed shadow image
        #: instead of copying the partition (docs/CONDENSING.md).  A flip
        #: also counts in ``checkpoints_taken``.
        self.flips_taken = 0

    def process_pending(self, limit: int | None = None) -> int:
        """Run checkpoint transactions for queued requests.

        Returns the number completed.  Requests whose relation lock is
        unavailable or whose partition is not yet memory-resident are left
        queued for a later pass.  The condenser pauses for the duration so
        a flip decision races at most the one slice already in flight.
        """
        done = 0
        self.db.condenser.pause()
        try:
            for request in self.db.checkpoint_queue.pending():
                if limit is not None and done >= limit:
                    break
                if request.state is not RequestState.REQUEST:
                    # An earlier sweep in this pass already checkpointed this
                    # partition and flipped its entry to FINISHED.
                    continue
                closure, commands = self._command_closure_for(request)
                if commands:
                    if self._run_group(request, closure, commands):
                        done += 1
                elif self._run_one(request):
                    done += 1
        finally:
            self.db.condenser.resume()
        return done

    def _command_closure_for(
        self, request: CheckpointRequest
    ) -> tuple[list[str], list[TxnCommand]]:
        """The live-command closure a request's relation belongs to.

        Non-empty commands mean a plain checkpoint of this partition must
        escalate to a group settlement sweep: copying one partition of a
        relation with live commands would tear a command's effects across
        image and re-execution (docs/LOGGING.md)."""
        db = self.db
        segment_id = request.partition.segment
        if segment_id == db.catalog.segment.segment_id:
            return [], []  # catalog changes are always value-logged
        commands = decode_live_commands(db)
        if not commands:
            return [], []
        relation = db.catalog.relation_of_segment(segment_id)
        relations, batch = relation_closure(commands, relation.name)
        return sorted(relations), batch

    def _flip_lsn_for(self, request: CheckpointRequest) -> int | None:
        """The watermark to flip at, or ``None`` if a copy is needed.

        A request can be satisfied by installing the bin's condensed
        shadow image as the catalog image — no lock, no copy — exactly
        when the chain is *current* (grew from the catalog slot) and
        *complete* (every flushed page folded in): the shadow then equals
        what step 4 would have copied, minus the still-buffered records
        the bin keeps anyway (docs/CONDENSING.md).  ``shadow != catalog``
        rules out re-flipping an already-installed image, which would
        never relieve the trigger.
        """
        db = self.db
        if not db.config.condense_enabled:
            return None
        segment_id = request.partition.segment
        if segment_id == db.catalog.segment.segment_id:
            return None
        try:
            descriptor = db.catalog.descriptor_for_segment(segment_id)
        except CatalogError:
            return None
        info = descriptor.partitions.get(request.partition.partition)
        if info is None:
            return None
        catalog_slot = info.checkpoint_slot
        bin_ = db.slt.bin(request.bin_index)
        with bin_.mutex:
            if (
                bin_.condensed_slot is not None
                and bin_.condensed_slot != catalog_slot
                and bin_.condensed_base_slot == catalog_slot
                and bin_.directory
                and bin_.condensed_lsn >= bin_.directory[-1]
            ):
                return bin_.condensed_lsn
        return None

    def _run_flip(self, request: CheckpointRequest, flip_lsn: int) -> bool:
        """Satisfy a checkpoint by installing the condensed shadow image.

        The shadow is already durable and transaction-consistent (only
        committed records reach flushed pages), so the whole procedure is
        the catalog update of step 5 inside a system transaction — steps
        3, 4, and 6a vanish.  The acknowledgement then resets the bin
        relative to ``flip_lsn`` instead of clearing it.
        """
        db = self.db
        crash_point("checkpoint.begin")
        request.state = RequestState.IN_PROGRESS
        txn = db.transactions.begin(system=True)
        try:
            bin_ = db.slt.bin(request.bin_index)
            with bin_.mutex:
                shadow = bin_.condensed_slot
            if shadow is None:  # chain vanished since the decision
                raise TransactionAborted("condense chain gone", txn_id=txn.txn_id)
            request.previous_slot = self._install_slot(request, shadow, txn)
            crash_point("checkpoint.slot-installed")
            txn.commit()
            crash_point("checkpoint.committed")
        except (TransactionAborted, NotResidentError):
            if txn.state.value == "active":
                txn.abort()
            request.state = RequestState.REQUEST
            request.previous_slot = None
            self.checkpoints_deferred += 1
            return False
        if request.previous_slot == shadow:
            # The catalog already pointed at the shadow (re-run after a
            # crash between commit and FINISHED): freeing it would free
            # the live image.
            request.previous_slot = None
        request.flip = True
        request.flip_lsn = flip_lsn
        request.state = RequestState.FINISHED
        self.checkpoints_taken += 1
        self.flips_taken += 1
        return True

    def _run_one(self, request: CheckpointRequest) -> bool:
        db = self.db
        flip_lsn = self._flip_lsn_for(request)
        if flip_lsn is not None:
            return self._run_flip(request, flip_lsn)
        crash_point("checkpoint.begin")
        request.state = RequestState.IN_PROGRESS
        txn = db.transactions.begin(system=True)
        try:
            lock_segment = self._lock_segment_for(request)
            txn.lock_relation(lock_segment, LockMode.SHARED)
            crash_point("checkpoint.locked")
            partition = db.memory.partition(request.partition)
            # Step 4: copy at memory speed, then release the lock at once.
            image = partition.to_bytes()
            db.main_cpu.charge(
                COPY_INSTRUCTIONS_PER_BYTE * len(image), "checkpoint-copy"
            )
            db.locks.release(txn.txn_id, ("rel", lock_segment))
            crash_point("checkpoint.copied")
            # Step 5: log the catalog / disk-map updates before the write.
            slot = db.checkpoint_disk.allocate(txn.txn_id)
            request.previous_slot = self._install_slot(request, slot, txn)
            crash_point("checkpoint.slot-installed")
            # Step 6: write the image and commit.
            db.checkpoint_disk.write_image(slot, image)
            if request.partition.segment == db.catalog.segment.segment_id:
                # Publish the catalog's own new location only once the
                # image is durable: the well-known areas are not logged,
                # so an earlier publish would dangle if we crashed here.
                db.publish_catalog_locations()
            crash_point("checkpoint.image-written")
            txn.commit()
            crash_point("checkpoint.committed")
        except (TransactionAborted, NotResidentError):
            # lock conflict or partition awaiting recovery: retry later
            if txn.state.value == "active":
                txn.abort()
            request.state = RequestState.REQUEST
            request.previous_slot = None
            self.checkpoints_deferred += 1
            return False
        request.state = RequestState.FINISHED
        self.checkpoints_taken += 1
        return True

    # -- group settlement sweep (docs/LOGGING.md) --------------------------------------

    def _run_group(
        self,
        request: CheckpointRequest,
        closure: list[str],
        commands: list[TxnCommand],
    ) -> bool:
        """Checkpoint a whole declared closure atomically, settling its
        live commands.

        Unlike the single-partition procedure, the SHARED relation locks on
        the *entire* closure are held through the commit point: every
        partition of every closure relation (and index) is copied from the
        same transaction-consistent cut, a :class:`SweepMarker` carrying
        the captured command watermark is appended to each copied
        partition's stream while nothing else can write to it, and the
        descriptors' ``command_watermark`` advance together.  After commit,
        commands at or below the watermark are pruned from the stable
        command log — their effects now live in the images.
        """
        db = self.db
        crash_point("checkpoint.begin")
        request.state = RequestState.IN_PROGRESS
        txn = db.transactions.begin(system=True)
        try:
            relation_descriptors = sorted(
                (db.catalog.relation(name) for name in closure),
                key=lambda descriptor: descriptor.segment_id,
            )
            for descriptor in relation_descriptors:
                txn.lock_relation(descriptor.segment_id, LockMode.SHARED)
            crash_point("checkpoint.locked")
            watermark = db.slb.command_seq
            members = []
            for descriptor in relation_descriptors:
                members.append(descriptor)
                members.extend(
                    db.catalog.index(index_name)
                    for index_name in descriptor.index_names
                )
            # Copy everything first: a partition awaiting recovery defers
            # the whole sweep before any catalog state has been touched.
            copies: list[tuple[object, int, bytes]] = []
            for member in members:
                for number in sorted(member.partitions):
                    address = PartitionAddress(member.segment_id, number)
                    image = db.memory.partition(address).to_bytes()
                    db.main_cpu.charge(
                        COPY_INSTRUCTIONS_PER_BYTE * len(image), "checkpoint-copy"
                    )
                    copies.append((member, number, image))
            crash_point("checkpoint.copied")
            previous: dict[PartitionAddress, int | None] = {}
            for member, number, _ in copies:
                slot = db.checkpoint_disk.allocate(txn.txn_id)
                info = member.partitions[number]
                previous[PartitionAddress(member.segment_id, number)] = (
                    info.checkpoint_slot
                )
                info.checkpoint_slot = slot
            for descriptor in relation_descriptors:
                descriptor.command_watermark = watermark
            for member in members:
                db.catalog.update(member, txn)
            crash_point("checkpoint.slot-installed")
            for member, number, image in copies:
                db.checkpoint_disk.write_image(
                    member.partitions[number].checkpoint_slot, image
                )
            crash_point("checkpoint.image-written")
            # One marker per copied partition, through this transaction's
            # own chain while the closure locks still exclude writers: the
            # marker's stream position is exactly the image point.
            for member, number, _ in copies:
                address = PartitionAddress(member.segment_id, number)
                db.append_log(
                    txn.txn_id,
                    SweepMarker(
                        txn.txn_id, db.slt.bin_index_of(address), address, watermark
                    ),
                )
            crash_point("checkpoint.sweep.markers-appended")
            txn.commit()  # releases the closure locks after the commit point
            crash_point("checkpoint.committed")
        except (TransactionAborted, NotResidentError):
            if txn.state.value == "active":
                txn.abort()
            request.state = RequestState.REQUEST
            request.previous_slot = None
            self.checkpoints_deferred += 1
            return False
        settled = [record.csn for record in commands if record.csn <= watermark]
        db.slb.discard_commands(settled)
        for member, number, _ in copies:
            address = PartitionAddress(member.segment_id, number)
            db.checkpoint_queue.finish_for(
                address, db.slt.bin_index_of(address), previous[address]
            )
        self.checkpoints_taken += 1
        self.sweeps_taken += 1
        self.commands_settled += len(settled)
        return True

    def settle_relation(self, name: str) -> int:
        """Force settlement of every live command whose closure includes
        ``name`` — the DDL fence: a relation cannot be dropped or change
        shape while a logged command might still re-execute against it.

        Returns the number of commands settled.  Retries around lock
        conflicts a bounded number of times, then surfaces the conflict.
        """
        db = self.db
        settled_total = 0
        attempts = 0
        while True:
            relations, batch = relation_closure(decode_live_commands(db), name)
            if not batch:
                return settled_total
            probe = CheckpointRequest(PartitionAddress(-1, -1), -1, "ddl-settlement")
            if self._run_group(probe, sorted(relations), batch):
                settled_total += len(batch)
                attempts = 0
                # Drain the sweep's markers (and any undrained barriers)
                # into their bins and acknowledge the finished entries
                # now: the caller is about to drop those bins, and neither
                # a committed record nor a FINISHED queue entry may
                # outlive its bin.
                db.engine.drain_log()
                db.recovery_processor.acknowledge_finished()
                continue
            attempts += 1
            if attempts >= 8:
                raise TransactionAborted(
                    f"could not settle live commands on relation {name!r}: "
                    f"closure relations stayed lock-busy",
                    txn_id=-1,
                )
            db.engine.drain_log()

    def _lock_segment_for(self, request: CheckpointRequest) -> int:
        """The segment whose relation-level lock covers this partition."""
        segment_id = request.partition.segment
        if segment_id == self.db.catalog.segment.segment_id:
            return segment_id  # catalog partitions lock the catalog itself
        relation = self.db.catalog.relation_of_segment(segment_id)
        return relation.segment_id

    def _install_slot(
        self, request: CheckpointRequest, slot: int, txn
    ) -> int | None:
        """Record the new checkpoint location in the catalogs (logged).

        Returns the superseded slot (freed after the acknowledgement).
        Catalog partitions keep their locations in the well-known stable
        areas instead, duplicated in the SLB and the SLT (section 2.4
        step 5 / section 2.5).
        """
        db = self.db
        segment_id = request.partition.segment
        number = request.partition.partition
        if segment_id == db.catalog.segment.segment_id:
            previous = db.catalog.own_partition_slots.get(number)
            db.catalog.own_partition_slots[number] = slot
            # well-known publish is deferred to after the image write
            return previous
        descriptor = db.catalog.descriptor_for_segment(segment_id)
        info = descriptor.partitions.get(number)
        if info is None:
            raise CatalogError(
                f"{request.partition} is not catalogued under {descriptor.name!r}"
            )
        previous = info.checkpoint_slot
        info.checkpoint_slot = slot
        db.catalog.update(descriptor, txn)
        return previous

    # -- restart support -------------------------------------------------------------

    def occupied_slots(self) -> set[int]:
        """Every slot referenced by the catalogs (for map rebuild)."""
        occupied: set[int] = set()
        for descriptor in list(self.db.catalog.relations()) + list(
            self.db.catalog.indexes()
        ):
            for info in descriptor.partitions.values():
                if info.checkpoint_slot is not None:
                    occupied.add(info.checkpoint_slot)
        for slot in self.db.catalog.own_partition_slots.values():
            if slot is not None:
                occupied.add(slot)
        # Published shadow images (docs/CONDENSING.md) are referenced from
        # the stable bins rather than the catalog; the map rebuild must
        # not hand their slots out again.
        for bin_ in self.db.slt.bins():
            if bin_.condensed_slot is not None:
                occupied.add(bin_.condensed_slot)
        return occupied
