"""Per-partition checkpointing (paper section 2.4).

Checkpoints are triggered by the recovery CPU (update count or age) and
*executed* by the main CPU between transactions.  The two processors talk
through a request queue in the Stable Log Buffer whose entries move
through request → in-progress → finished.
"""

from repro.checkpoint.protocol import CheckpointQueue, CheckpointRequest, RequestState
from repro.checkpoint.disk_queue import CheckpointDiskQueue
from repro.checkpoint.manager import CheckpointManager

__all__ = [
    "CheckpointDiskQueue",
    "CheckpointManager",
    "CheckpointQueue",
    "CheckpointRequest",
    "RequestState",
]
