"""Database-level checkpointing and recovery (the Hagmann-style baseline).

Section 1.2: earlier memory-resident recovery proposals "treat the
database as a single object instead of a collection of smaller objects —
for post-crash recovery, these methods will reload the entire database
and process the log before the database is ready for transaction
processing to resume."

:class:`WholeDatabaseCheckpointer` streams *every* resident partition to
the checkpoint disk in one sweep (under per-relation read locks), so each
checkpoint pays for the whole database instead of being amortised over a
partition's updates.  :func:`full_reload_restart` restores everything
eagerly and reports the simulated time before the first transaction can
run — database-level recovery being exactly partition-level recovery with
one very large partition (section 3.4.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.checkpoint.manager import COPY_INSTRUCTIONS_PER_BYTE
from repro.common.errors import CheckpointError
from repro.concurrency.locks import LockMode
from repro.db.database import RecoveryMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database
    from repro.txn.transaction import Transaction


class WholeDatabaseCheckpointer:
    """Checkpoints the entire database as one action."""

    def __init__(self, db: "Database"):
        self.db = db
        self.sweeps = 0
        self.partitions_written = 0
        self.bytes_written = 0

    def checkpoint_all(self) -> float:
        """One full-database checkpoint sweep; returns simulated seconds.

        Every resident partition (catalog, relations, indexes) is copied
        and written; afterwards every bin's log information is released
        exactly as a per-partition checkpoint would do.
        """
        db = self.db
        start = db.clock.now
        txn = db.transactions.begin(system=True)
        try:
            for segment in db.memory.segments():
                lock_segment = self._lock_segment(segment.segment_id)
                txn.lock_relation(lock_segment, LockMode.SHARED)
                for partition in segment.resident_partitions():
                    image = partition.to_bytes()
                    db.main_cpu.charge(
                        COPY_INSTRUCTIONS_PER_BYTE * len(image), "checkpoint-copy"
                    )
                    slot = db.checkpoint_disk.allocate(txn.txn_id)
                    previous = self._install(partition.address, slot, txn)
                    db.checkpoint_disk.write_image(slot, image)
                    if previous is not None:
                        db.checkpoint_disk.free(previous)
                    self.partitions_written += 1
                    self.bytes_written += len(image)
            txn.commit()
        except Exception:
            if txn.state.value == "active":
                txn.abort()
            raise
        # all log information predates the sweep: reset every active bin
        for bin_ in db.slt.active_bins():
            db.slt.reset_after_checkpoint(bin_.bin_index)
        db.publish_catalog_locations()
        self.sweeps += 1
        return db.clock.now - start

    def _lock_segment(self, segment_id: int) -> int:
        if segment_id == self.db.catalog.segment.segment_id:
            return segment_id
        return self.db.catalog.relation_of_segment(segment_id).segment_id

    def _install(self, address, slot: int, txn: "Transaction") -> int | None:
        db = self.db
        if address.segment == db.catalog.segment.segment_id:
            previous = db.catalog.own_partition_slots.get(address.partition)
            db.catalog.own_partition_slots[address.partition] = slot
            return previous
        descriptor = db.catalog.descriptor_for_segment(address.segment)
        info = descriptor.partitions.get(address.partition)
        if info is None:
            raise CheckpointError(f"{address} is not catalogued")
        previous = info.checkpoint_slot
        info.checkpoint_slot = slot
        db.catalog.update(descriptor, txn)
        return previous


def full_reload_restart(db: "Database") -> dict:
    """Crash already happened; restore the entire database before any
    transaction runs.  Returns timing statistics (simulated seconds)."""
    start = db.clock.now
    coordinator = db.restart(RecoveryMode.EAGER)
    elapsed = db.clock.now - start
    return {
        "seconds_to_first_transaction": elapsed,
        "seconds_total": elapsed,
        "partitions_recovered": coordinator.partitions_recovered,
        "records_replayed": coordinator.records_replayed,
        "pages_read": coordinator.pages_read,
    }
