"""Commit-protocol baselines: synchronous WAL and group commit.

Section 1.2 reviews how disk-based designs pay for commit:

* **Synchronous WAL** (Lindsay et al.): every transaction forces its log
  page to disk before releasing locks — commit latency includes a disk
  write and throughput is bounded by the log device.
* **Group commit** (IMS FASTPATH): transactions precommit (locks
  released, log still volatile) and officially commit when the shared log
  buffer flushes — log I/O amortised over the group, at the price of
  commit latency up to a full buffer-fill period.
* **Stable-RAM instant commit** (DeWitt et al. / this paper): the REDO
  records are durable the moment they reach the Stable Log Buffer, so
  commit adds no I/O latency at all.

These closed-form models drive ``bench_ablation_commit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import DiskParameters


@dataclass(frozen=True)
class CommitProtocolModel:
    """Commit latency / sustainable commit rate under the three protocols."""

    disk: DiskParameters = field(default_factory=DiskParameters)
    log_page_size: int = 8 * 1024
    log_record_size: int = 24
    records_per_transaction: int = 4
    #: Stable-memory write time per byte (4x-slowed RAM at ~1 us per
    #: reference, 8-byte references).
    stable_write_seconds_per_byte: float = 4e-6 / 8

    # -- per-transaction log volume -------------------------------------------------

    @property
    def log_bytes_per_transaction(self) -> int:
        return self.records_per_transaction * self.log_record_size

    # -- synchronous WAL ---------------------------------------------------------------

    def sync_wal_commit_latency(self) -> float:
        """One log force (sequential page write) per transaction."""
        return self.disk.page_write_time(self.log_page_size, sibling=True)

    def sync_wal_commit_rate(self) -> float:
        """The log device bounds commits to one force per transaction."""
        return 1.0 / self.sync_wal_commit_latency()

    # -- group commit ----------------------------------------------------------------------

    def group_size(self) -> int:
        """Transactions whose records fill one log page."""
        return max(1, self.log_page_size // self.log_bytes_per_transaction)

    def group_commit_rate(self) -> float:
        """One force commits a whole group."""
        return self.group_size() / self.sync_wal_commit_latency()

    def group_commit_latency(self, arrival_rate: float) -> float:
        """Expected commit latency at a given transaction arrival rate.

        A transaction waits on average half the buffer-fill period, then
        the force itself.  At low arrival rates the fill period dominates
        (the classical group-commit latency penalty).
        """
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        fill_seconds = self.group_size() / arrival_rate
        return fill_seconds / 2.0 + self.sync_wal_commit_latency()

    # -- stable-RAM instant commit ------------------------------------------------------------

    def stable_ram_commit_latency(self) -> float:
        """Commit is the stable-memory write of the records themselves."""
        return self.log_bytes_per_transaction * self.stable_write_seconds_per_byte

    def stable_ram_commit_rate(self) -> float:
        """Bounded by stable-memory bandwidth, not the disk."""
        return 1.0 / self.stable_ram_commit_latency()

    # -- comparison table ------------------------------------------------------------------------

    def comparison(self, arrival_rate: float = 1000.0) -> list[dict]:
        """Rows for the ablation bench: protocol, latency, max rate."""
        return [
            {
                "protocol": "stable-ram-instant",
                "commit_latency_s": self.stable_ram_commit_latency(),
                "max_commit_rate": self.stable_ram_commit_rate(),
            },
            {
                "protocol": "group-commit",
                "commit_latency_s": self.group_commit_latency(arrival_rate),
                "max_commit_rate": self.group_commit_rate(),
            },
            {
                "protocol": "sync-wal",
                "commit_latency_s": self.sync_wal_commit_latency(),
                "max_commit_rate": self.sync_wal_commit_rate(),
            },
        ]
