"""Baseline recovery designs the paper compares against (section 1).

* :mod:`repro.baselines.full_reload` — Hagmann-style whole-database
  checkpointing and full-reload restart ("treat the database as a single
  object"): database-level recovery is partition-level recovery with one
  very large partition (section 3.4.1).
* :mod:`repro.baselines.disk_wal` — conventional disk-resident commit
  protocols: synchronous write-ahead logging and IMS FASTPATH-style group
  commit, against which the stable-RAM instant commit is measured.
"""

from repro.baselines.full_reload import WholeDatabaseCheckpointer, full_reload_restart
from repro.baselines.disk_wal import CommitProtocolModel

__all__ = [
    "CommitProtocolModel",
    "WholeDatabaseCheckpointer",
    "full_reload_restart",
]
