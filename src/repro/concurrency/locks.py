"""Two-phase lock manager.

Resources are arbitrary hashable names — the database locks
:class:`~repro.common.types.EntityAddress` values for tuples and index
components, and ``("relation", segment_id)`` names for the relation-level
read locks that checkpoint transactions take (paper section 2.4).

Lock modes are shared / exclusive with upgrade support.  Requests that
conflict join a FIFO wait queue; a waits-for cycle is detected at request
time and aborts the requester with :class:`DeadlockError` (the youngest
transaction in the cycle is the victim by construction: it is the one that
would have closed the cycle).
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from repro.common.errors import ConcurrencyError, DeadlockError, LockNotHeldError
from repro.concurrency import audit

Resource = Hashable


class LockMode(enum.Enum):
    INTENT_SHARED = "IS"
    INTENT_EXCLUSIVE = "IX"
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return other in _COMPATIBLE[self]


_COMPATIBLE: dict[LockMode, frozenset[LockMode]] = {
    LockMode.INTENT_SHARED: frozenset(
        {LockMode.INTENT_SHARED, LockMode.INTENT_EXCLUSIVE, LockMode.SHARED}
    ),
    LockMode.INTENT_EXCLUSIVE: frozenset(
        {LockMode.INTENT_SHARED, LockMode.INTENT_EXCLUSIVE}
    ),
    LockMode.SHARED: frozenset({LockMode.INTENT_SHARED, LockMode.SHARED}),
    LockMode.EXCLUSIVE: frozenset(),
}

#: Partial order of lock strength; the join of two held modes is the
#: weakest mode at least as strong as both (IX ∨ S promotes to X — we do
#: not model SIX).
_STRENGTH: dict[LockMode, int] = {
    LockMode.INTENT_SHARED: 0,
    LockMode.INTENT_EXCLUSIVE: 1,
    LockMode.SHARED: 1,
    LockMode.EXCLUSIVE: 2,
}


def _join(a: LockMode, b: LockMode) -> LockMode:
    if a is b:
        return a
    if _STRENGTH[a] < _STRENGTH[b]:
        a, b = b, a
    if _STRENGTH[a] > _STRENGTH[b]:
        # strictly stronger absorbs, except the IX/S pair at equal rank
        if a is LockMode.EXCLUSIVE or b is LockMode.INTENT_SHARED:
            return a
    # IX ∨ S (equal strength, different modes) and any leftover: promote
    return LockMode.EXCLUSIVE


def _covers(held: LockMode, wanted: LockMode) -> bool:
    """True when a held mode already grants everything ``wanted`` does."""
    if held is wanted:
        return True
    if held is LockMode.EXCLUSIVE:
        return True
    if held is LockMode.SHARED and wanted is LockMode.INTENT_SHARED:
        return True
    if held is LockMode.INTENT_EXCLUSIVE and wanted is LockMode.INTENT_SHARED:
        return True
    return False


@dataclass
class _LockState:
    """Holders and waiters of one resource."""

    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: deque[tuple[int, LockMode]] = field(default_factory=deque)

    def compatible_with_others(self, txn_id: int, mode: LockMode) -> bool:
        return all(
            mode.compatible_with(held)
            for holder, held in self.holders.items()
            if holder != txn_id
        )


class LockManager:
    """Strict two-phase locking over named resources.

    All public entry points serialise on one internal mutex: under the
    concurrent scheduler several worker threads request, release, and
    inspect locks simultaneously, and grant/wait decisions must observe a
    consistent lock table.  The mutex is a leaf in the global order
    (structure mutex → latch → stable lock): no lock, latch, or stable
    access is ever taken while it is held — the audit-recorder hooks fire
    inside it, but the recorder's own mutex is strictly interior.
    """

    def __init__(self):
        self._locks: dict[Resource, _LockState] = {}
        self._held_by_txn: dict[int, set[Resource]] = {}
        self._waiting_on: dict[int, Resource] = {}
        self._mutex = threading.RLock()

    # -- acquisition ---------------------------------------------------------

    def acquire(
        self, txn_id: int, resource: Resource, mode: LockMode, *, wait: bool = True
    ) -> bool:
        """Request ``mode`` on ``resource`` for ``txn_id``.

        Returns True if granted immediately.  If the request conflicts and
        ``wait`` is true, the transaction is parked on the wait queue and
        False is returned — the caller resumes when
        :meth:`release_all` (or :meth:`release`) grants it, observable via
        :meth:`holds`.  With ``wait=False`` a conflicting request simply
        returns False without queueing.

        Raises :class:`DeadlockError` when waiting would create a cycle.
        """
        with self._mutex:
            state = self._locks.setdefault(resource, _LockState())
            if self._can_grant(state, txn_id, mode):
                self._grant(state, txn_id, resource, mode, blocking=wait)
                return True
            if not wait:
                return False
            already_waiting_on = self._waiting_on.get(txn_id)
            if already_waiting_on is not None:
                if already_waiting_on == resource:
                    return False  # request already queued; do not double-enqueue
                raise ConcurrencyError(
                    f"txn {txn_id} requested {resource!r} while already waiting "
                    f"on {already_waiting_on!r}"
                )
            self._check_deadlock(txn_id, resource, state)
            state.waiters.append((txn_id, mode))
            self._waiting_on[txn_id] = resource
            return False

    def _can_grant(self, state: _LockState, txn_id: int, mode: LockMode) -> bool:
        held = state.holders.get(txn_id)
        if held is not None and _covers(held, mode):
            return True  # re-entrant / already strong enough
        if held is not None:
            # upgrade: the mode that would actually be held is the JOIN of
            # the current and requested modes (S ∨ IX promotes to X), and
            # it is the join that must be compatible with every other
            # holder.  Upgrades may bypass the wait queue, as is
            # conventional.
            return state.compatible_with_others(txn_id, _join(held, mode))
        # brand-new request: fairness — do not jump ahead of waiters
        if state.waiters:
            return False
        return state.compatible_with_others(txn_id, mode)

    def _grant(
        self,
        state: _LockState,
        txn_id: int,
        resource: Resource,
        mode: LockMode,
        *,
        blocking: bool,
    ) -> None:
        held = state.holders.get(txn_id)
        state.holders[txn_id] = mode if held is None else _join(held, mode)
        self._held_by_txn.setdefault(txn_id, set()).add(resource)
        audit.lock_acquired(txn_id, resource, blocking=blocking)

    # -- deadlock detection ------------------------------------------------------

    def _check_deadlock(
        self, txn_id: int, resource: Resource, state: _LockState
    ) -> None:
        """DFS over the waits-for graph rooted at the holders of ``resource``."""
        blockers = set(state.holders) | {waiter for waiter, _ in state.waiters}
        blockers.discard(txn_id)
        seen: set[int] = set()
        stack = list(blockers)
        while stack:
            current = stack.pop()
            if current == txn_id:
                raise DeadlockError(
                    f"transaction {txn_id} waiting on {resource!r} would deadlock",
                    victim=txn_id,
                )
            if current in seen:
                continue
            seen.add(current)
            blocked_on = self._waiting_on.get(current)
            if blocked_on is None:
                continue
            next_state = self._locks[blocked_on]
            stack.extend(set(next_state.holders) - seen)
            stack.extend(
                waiter for waiter, _ in next_state.waiters if waiter not in seen
            )

    # -- release -----------------------------------------------------------------

    def release(self, txn_id: int, resource: Resource) -> None:
        """Release one lock early.

        Regular transactions hold locks to commit (strict 2PL); this path
        exists for checkpoint transactions, which release their relation
        read lock as soon as the partition copy is made (section 2.4).
        """
        with self._mutex:
            state = self._locks.get(resource)
            if state is None or txn_id not in state.holders:
                raise LockNotHeldError(f"txn {txn_id} does not hold {resource!r}")
            del state.holders[txn_id]
            self._held_by_txn[txn_id].discard(resource)
            audit.lock_released(txn_id, resource)
            self._wake_waiters(resource, state)

    def release_all(self, txn_id: int) -> None:
        """Release every lock of a committing or aborting transaction."""
        with self._mutex:
            self._cancel_wait(txn_id)
            audit.locks_dropped(txn_id)
            for resource in self._held_by_txn.pop(txn_id, set()):
                state = self._locks[resource]
                state.holders.pop(txn_id, None)
                self._wake_waiters(resource, state)

    def _cancel_wait(self, txn_id: int) -> None:
        resource = self._waiting_on.pop(txn_id, None)
        if resource is None:
            return
        state = self._locks[resource]
        state.waiters = deque(
            (waiter, mode) for waiter, mode in state.waiters if waiter != txn_id
        )

    def _wake_waiters(self, resource: Resource, state: _LockState) -> None:
        """Grant as many queued requests as compatibility allows, in FIFO order."""
        while state.waiters:
            txn_id, mode = state.waiters[0]
            held = state.holders.get(txn_id)
            effective = mode if held is None else _join(held, mode)
            if not state.compatible_with_others(txn_id, effective):
                break
            state.waiters.popleft()
            del self._waiting_on[txn_id]
            self._grant(state, txn_id, resource, mode, blocking=True)
        if not state.holders and not state.waiters:
            del self._locks[resource]

    # -- inspection ----------------------------------------------------------------

    def holds(self, txn_id: int, resource: Resource, mode: LockMode | None = None) -> bool:
        with self._mutex:
            state = self._locks.get(resource)
            if state is None:
                return False
            held = state.holders.get(txn_id)
            if held is None:
                return False
            return mode is None or _covers(held, mode)

    def is_waiting(self, txn_id: int) -> bool:
        with self._mutex:
            return txn_id in self._waiting_on

    def locks_held(self, txn_id: int) -> set[Resource]:
        with self._mutex:
            return set(self._held_by_txn.get(txn_id, set()))

    def crash(self) -> None:
        """Lose all lock state (lock tables are volatile)."""
        with self._mutex:
            for txn_id in list(self._held_by_txn):
                audit.locks_dropped(txn_id)
            self._locks.clear()
            self._held_by_txn.clear()
            self._waiting_on.clear()
