"""Short-duration latches.

Latches protect physical structures (the SLB block free list, the disk
allocation map) for the duration of one operation — they are not
two-phase.  Section 2.3.1 notes critical sections are needed *only* for
block allocation, and section 2.4 requires a write latch on the disk
allocation map because several checkpoint transactions may run at once.

In the cooperative simulation a latch can never actually block (the holder
always releases before yielding), so acquisition failure indicates a bug —
it raises immediately rather than waiting.  Section 2.5's rule that a
transaction must not hold a latch across a recovery wait is enforced by
:meth:`Latch.assert_unheld`.
"""

from __future__ import annotations

import threading

from repro.common.errors import ReproError
from repro.concurrency import audit


class LatchViolationError(ReproError):
    """A latch protocol rule was broken (double acquire, foreign release)."""


class Latch:
    """A non-reentrant mutual-exclusion latch with owner tracking.

    The owner check-and-set is atomic (one internal lock), so the latch
    keeps its raise-on-contention semantics under the threaded engine too:
    every cross-thread path that reaches a latch is supposed to already be
    serialised by its structure's mutex, and a concurrent acquisition is a
    protocol bug that should fail loudly rather than corrupt the owner
    field.
    """

    def __init__(self, name: str):
        self.name = name
        self._owner: int | None = None
        self.acquisitions = 0
        self._state_lock = threading.Lock()

    def acquire(self, owner: int) -> None:
        with self._state_lock:
            if self._owner is not None:
                raise LatchViolationError(
                    f"latch {self.name!r} already held by {self._owner} "
                    f"(requested by {owner})"
                )
            self._owner = owner
            self.acquisitions += 1
        audit.latch_acquired(owner, self.name)

    def release(self, owner: int) -> None:
        with self._state_lock:
            if self._owner != owner:
                raise LatchViolationError(
                    f"latch {self.name!r} released by {owner} but held by {self._owner}"
                )
            self._owner = None
        audit.latch_released(owner, self.name)

    @property
    def held(self) -> bool:
        return self._owner is not None

    @property
    def owner(self) -> int | None:
        return self._owner

    def assert_unheld(self, context: str) -> None:
        """Enforce the no-latch-across-recovery-wait rule of section 2.5."""
        if self._owner is not None:
            raise LatchViolationError(
                f"latch {self.name!r} held by {self._owner} across {context}; "
                f"the holder must release it or abort (paper section 2.5)"
            )

    class _Guard:
        def __init__(self, latch: "Latch", owner: int):
            self._latch = latch
            self._owner = owner

        def __enter__(self) -> "Latch":
            self._latch.acquire(self._owner)
            return self._latch

        def __exit__(self, *exc_info: object) -> None:
            self._latch.release(self._owner)

    def held_by(self, owner: int) -> "Latch._Guard":
        """Context manager: ``with latch.held_by(txn_id): ...``."""
        return Latch._Guard(self, owner)
