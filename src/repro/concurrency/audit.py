"""Dynamic lock-order auditing.

The paper's recovery argument rests on two concurrency disciplines that a
type checker cannot see:

* **Lock leveling** — the hierarchy relation-lock → entity-lock must be
  acquired top-down, and the short physical latches (the SLB block free
  list, the checkpoint-disk allocation map — sections 2.3.1 and 2.4) must
  have a consistent global order.  An inversion anywhere is a latent
  deadlock that the waits-for detector can only turn into an abort storm.
* **No latch across a crash boundary** — section 2.5 forbids holding a
  latch across a recovery wait; the same reasoning applies to any point
  where the simulation may crash (a latch holder that dies leaves the
  protected structure wedged for every later owner).

This module is the opt-in recorder behind the ``--lock-audit`` pytest
flag (see :mod:`tools.repro_check.pytest_plugin`).  The hooks compiled
into :class:`~repro.concurrency.locks.LockManager` and
:class:`~repro.concurrency.latch.Latch` cost one module-global read and a
``None`` check when no recorder is active — the same budget discipline as
:func:`repro.sim.chaos.crash_point`.

Lock *instances* are normalised to ordering **nodes** before edges are
recorded, and only resources that can ever *wait* enter the graph:

* relation-level locks keep their identity (``relation:<segment>``) —
  checkpoint transactions block on them (section 2.4, step 3), so their
  acquisition order across code paths must be consistent;
* every latch keeps its identity (``latch:<name>``) — latches have no
  deadlock detector at all, so their global order must be total;
* entity locks are **excluded** from the ordering graph: transactions
  acquire them no-wait (a refused request aborts the requester —
  conservative deadlock avoidance), so no waits-for cycle can pass
  through them, and their per-key acquisition order is legitimately
  schedule-dependent.  They still count toward the acquisition total
  and the locks-under-latch tally.

A deadlock needs every participant *waiting* on the next, so an edge
A → B is recorded only when B's acquisition could block: lock-manager
requests made with ``wait=True``, and every latch acquisition (a latch
that is busy on real hardware spins or blocks — the cooperative
simulation merely cannot express it).  No-wait lock requests never join
a waits-for cycle and therefore contribute no edges, whatever is held
at the time.

2PL locks are deliberately **not** flagged when held across a crash
point: strict two-phase locking holds every lock through the commit-record
write (``txn.commit.before-slb``) by design, and post-crash lock tables
are volatile anyway.  Latches are flagged.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable

#: The single active recorder (None = every hook is a no-op).
_recorder: "LockOrderRecorder | None" = None


def activate(recorder: "LockOrderRecorder") -> None:
    """Install ``recorder``; raises if another recorder is active."""
    global _recorder
    if _recorder is not None:
        raise RuntimeError("another LockOrderRecorder is already active")
    _recorder = recorder


def deactivate() -> None:
    global _recorder
    _recorder = None


def active_recorder() -> "LockOrderRecorder | None":
    return _recorder


# -- hook entry points (called from locks.py / latch.py / the plugin) --------


def lock_acquired(owner: int, resource: Hashable, *, blocking: bool) -> None:
    rec = _recorder
    if rec is not None:
        rec.on_lock_acquired(owner, resource, blocking=blocking)


def lock_released(owner: int, resource: Hashable) -> None:
    rec = _recorder
    if rec is not None:
        rec.on_lock_released(owner, resource)


def locks_dropped(owner: int) -> None:
    """release_all / crash: the owner's whole lock set vanishes at once."""
    rec = _recorder
    if rec is not None:
        rec.on_locks_dropped(owner)


def latch_acquired(owner: int, name: str) -> None:
    rec = _recorder
    if rec is not None:
        rec.on_latch_acquired(owner, name)


def latch_released(owner: int, name: str) -> None:
    rec = _recorder
    if rec is not None:
        rec.on_latch_released(owner, name)


def normalize(resource: Hashable) -> str | None:
    """Map a lock-manager resource to its ordering node, or None for
    resources that never wait (entity locks) and so stay out of the
    ordering graph.

    ``("rel", segment_id)`` tuples (see
    :meth:`~repro.txn.transaction.Transaction.lock_relation`) are the
    relation-level read/intent locks checkpointers block on.
    """
    if isinstance(resource, tuple) and len(resource) == 2 and resource[0] == "rel":
        return f"relation:{resource[1]}"
    return None


@dataclass
class OrderingEdge:
    """``held`` was held while ``acquired`` was acquired, somewhere."""

    held: str
    acquired: str
    #: One concrete witness: (owner, held resource, acquired resource).
    witness: str
    count: int = 1


@dataclass
class LatchCrashViolation:
    """A latch was held while execution passed a crash point."""

    latch: str
    owner: int
    crash_point: str


@dataclass
class AuditReport:
    """Everything the recorder found, ready for rendering."""

    edges: list[OrderingEdge]
    cycles: list[list[str]]
    latch_crash_violations: list[LatchCrashViolation]
    acquisitions: int

    @property
    def ok(self) -> bool:
        return not self.cycles and not self.latch_crash_violations

    def render(self) -> str:
        lines = [
            f"lock-audit: {self.acquisitions} acquisitions, "
            f"{len(self.edges)} ordering edges"
        ]
        if self.cycles:
            lines.append(f"LOCK-ORDER CYCLES ({len(self.cycles)}):")
            for cycle in self.cycles:
                lines.append("  " + " -> ".join(cycle + [cycle[0]]))
                for edge in self.edges:
                    if edge.held in cycle and edge.acquired in cycle:
                        lines.append(
                            f"    {edge.held} -> {edge.acquired} "
                            f"(x{edge.count}, e.g. {edge.witness})"
                        )
        if self.latch_crash_violations:
            lines.append(
                f"LATCHES HELD ACROSS CRASH POINTS "
                f"({len(self.latch_crash_violations)}):"
            )
            for v in self.latch_crash_violations:
                lines.append(
                    f"  {v.latch} held by {v.owner} across "
                    f"crash_point({v.crash_point!r})"
                )
        if self.ok:
            lines.append("no lock-order cycles, no latches across crash points")
        return "\n".join(lines)


class LockOrderRecorder:
    """Builds a global lock-order graph from acquisition events.

    For every acquisition of node ``B`` by an owner currently holding
    node ``A`` (A != B) an edge A → B is recorded.  A cycle in the
    resulting graph means two code paths disagree about acquisition
    order — a latent deadlock even if no test schedule happened to
    interleave them fatally.
    """

    def __init__(self):
        #: owner -> multiset of held ordering nodes (2PL locks).
        self._held_locks: dict[int, Counter[str]] = {}
        #: owner -> multiset of held latch nodes.
        self._held_latches: dict[int, Counter[str]] = {}
        #: thread ident -> multiset of (owner, latch node) held *by that
        #: thread*; the crash-point check consults only the passing
        #: thread's entry, so a latch legitimately held by a concurrent
        #: restore worker is not misread as "held across a crash point".
        self._thread_latches: dict[int, Counter[tuple[int, str]]] = {}
        #: (held, acquired) -> edge.
        self._edges: dict[tuple[str, str], OrderingEdge] = {}
        self.acquisitions = 0
        self._latch_crash_violations: list[LatchCrashViolation] = []
        #: Acquiring a 2PL lock while holding a latch is reported as an
        #: ordinary ordering edge *and* tallied here: a latch that waits
        #: on a lock waits for an unbounded time, defeating the paper's
        #: "critical sections only for block allocation" argument.
        self.locks_under_latch: Counter[str] = Counter()
        #: Events arrive from every engine thread; the graph and the
        #: held-sets mutate under one lock.
        self._mutex = threading.RLock()

    # -- event intake -------------------------------------------------------

    def _record_edges(self, owner: int, node: str, witness_to: str) -> None:
        for source in (self._held_locks, self._held_latches):
            held = source.get(owner)
            if not held:
                continue
            for prior in held:
                if prior == node:
                    continue
                key = (prior, node)
                edge = self._edges.get(key)
                if edge is None:
                    self._edges[key] = OrderingEdge(
                        prior, node, f"owner {owner}: {prior} then {witness_to}"
                    )
                else:
                    edge.count += 1

    def on_lock_acquired(
        self, owner: int, resource: Hashable, *, blocking: bool
    ) -> None:
        with self._mutex:
            self.acquisitions += 1
            latches = self._held_latches.get(owner)
            if latches:
                for latch in latches:
                    self.locks_under_latch[latch] += 1
            node = normalize(resource)
            if node is None:
                return
            if blocking:
                self._record_edges(owner, node, f"{node} ({resource!r})")
            self._held_locks.setdefault(owner, Counter())[node] += 1

    def on_lock_released(self, owner: int, resource: Hashable) -> None:
        with self._mutex:
            node = normalize(resource)
            if node is None:
                return
            held = self._held_locks.get(owner)
            if held and held[node] > 0:
                held[node] -= 1
                if held[node] == 0:
                    del held[node]

    def on_locks_dropped(self, owner: int) -> None:
        with self._mutex:
            self._held_locks.pop(owner, None)

    def on_latch_acquired(self, owner: int, name: str) -> None:
        node = f"latch:{name}"
        tid = threading.get_ident()
        with self._mutex:
            self.acquisitions += 1
            self._record_edges(owner, node, node)
            self._held_latches.setdefault(owner, Counter())[node] += 1
            self._thread_latches.setdefault(tid, Counter())[(owner, node)] += 1

    def on_latch_released(self, owner: int, name: str) -> None:
        node = f"latch:{name}"
        tid = threading.get_ident()
        with self._mutex:
            held = self._held_latches.get(owner)
            if held and held[node] > 0:
                held[node] -= 1
                if held[node] == 0:
                    del held[node]
            mine = self._thread_latches.get(tid)
            if mine and mine[(owner, node)] > 0:
                mine[(owner, node)] -= 1
                if mine[(owner, node)] == 0:
                    del mine[(owner, node)]

    def on_crash_point(self, point: str) -> None:
        """Crash-point observer: flag every latch the passing thread holds."""
        tid = threading.get_ident()
        with self._mutex:
            mine = self._thread_latches.get(tid)
            if not mine:
                return
            for (owner, node), count in mine.items():
                if count > 0:
                    self._latch_crash_violations.append(
                        LatchCrashViolation(node, owner, point)
                    )

    def reset_ownership(self) -> None:
        """Forget who holds what (between tests / after a crash) while
        keeping the accumulated ordering graph."""
        with self._mutex:
            self._held_locks.clear()
            self._held_latches.clear()
            self._thread_latches.clear()

    # -- analysis -----------------------------------------------------------

    def _adjacency(self) -> dict[str, set[str]]:
        graph: dict[str, set[str]] = {}
        for held, acquired in self._edges:
            graph.setdefault(held, set()).add(acquired)
            graph.setdefault(acquired, set())
        return graph

    def find_cycles(self) -> list[list[str]]:
        """Strongly connected components with more than one node (or a
        self-edge), i.e. the ordering violations, via Tarjan's algorithm."""
        graph = self._adjacency()
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list[str]] = []

        def strongconnect(root: str) -> None:
            # iterative Tarjan: (node, iterator) work stack
            work = [(root, iter(sorted(graph[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(graph[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in graph.get(node, ()):
                        sccs.append(sorted(component))

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)
        return sccs

    def edges(self) -> Iterable[OrderingEdge]:
        return list(self._edges.values())

    def report(self) -> AuditReport:
        return AuditReport(
            edges=sorted(
                self._edges.values(), key=lambda e: (e.held, e.acquired)
            ),
            cycles=self.find_cycles(),
            latch_crash_violations=list(self._latch_crash_violations),
            acquisitions=self.acquisitions,
        )
