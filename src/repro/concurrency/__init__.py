"""Concurrency control substrate.

The paper's MM-DBMS locks index components and relation tuples with
two-phase locks held until transaction commit (section 2.3.2), uses a
single relation read lock to get a transaction-consistent checkpoint image
(section 2.4, step 3), and protects short structures with latches.

The simulation is cooperative and single-threaded, so "waiting" means a
request parks on the lock's queue until the holder releases it; deadlocks
are detected immediately on a waits-for cycle and surface as
:class:`~repro.common.errors.DeadlockError` on the requester.
"""

from repro.concurrency import audit
from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.latch import Latch

__all__ = ["Latch", "LockManager", "LockMode", "audit"]
