"""Modified Linear Hashing: the MM-DBMS hash index (Lehman 86c).

Linear hashing grows one bucket at a time: a split pointer sweeps across
the table, and when the average chain load crosses a threshold the bucket
under the pointer is split between itself and a new buddy bucket at
``2^level`` positions away.  The *modified* memory-resident variant keeps
the whole directory in memory and uses small fixed-capacity bucket nodes
with overflow chaining.

Components stored in the index segment:

* the **anchor**: level, split pointer, record count and the bucket
  directory (addresses of primary buckets);
* **bucket nodes**: sorted-insertion-order item arrays with an overflow
  pointer.

Every insert/delete/split reports the exact set of rewritten components
through the node store, producing the per-component REDO records of paper
section 2.3.2.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import IndexStructureError
from repro.common.types import EntityAddress
from repro.index.base import (
    NULL_ADDRESS,
    Index,
    pack_address,
    pack_item,
    serialised,
    serialised_scan,
    unpack_address,
    unpack_item,
)
from repro.index.keys import Key, encode_key
from repro.index.node_store import NodeStore

_BUCKET_HEADER = struct.Struct("<BH")  # type, nitems
_ANCHOR_HEADER = struct.Struct("<BIIQH")  # type, level, split, count, nchunks
_CHUNK_HEADER = struct.Struct("<BH")  # type, naddresses

BUCKET_TYPE = 0x48  # 'H'
ANCHOR_TYPE = 0x4C  # 'L'
CHUNK_TYPE = 0x44  # 'D'

#: Bucket addresses per directory chunk.  The directory is stored as a
#: two-level structure (anchor -> fixed-size chunks -> buckets) so no
#: single component grows without bound as the table splits — components
#: must stay well under a partition's size.
CHUNK_CAPACITY = 64

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def stable_hash(key: Key) -> int:
    """FNV-1a over the encoded key: deterministic across runs, unlike
    Python's randomised ``hash``. Determinism matters because bucket
    placement is reconstructed from logged component images."""
    value = _FNV_OFFSET
    for byte in encode_key(key):
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


@dataclass
class _Bucket:
    address: EntityAddress
    items: list[tuple[Key, EntityAddress]] = field(default_factory=list)
    overflow: EntityAddress = NULL_ADDRESS

    def encode(self) -> bytes:
        parts = [
            _BUCKET_HEADER.pack(BUCKET_TYPE, len(self.items)),
            pack_address(self.overflow),
        ]
        parts.extend(pack_item(key, value) for key, value in self.items)
        return b"".join(parts)

    @classmethod
    def decode(cls, address: EntityAddress, blob: bytes) -> "_Bucket":
        bucket_type, nitems = _BUCKET_HEADER.unpack_from(blob, 0)
        if bucket_type != BUCKET_TYPE:
            raise IndexStructureError(
                f"entity at {address} is not a hash bucket (type {bucket_type})"
            )
        pos = _BUCKET_HEADER.size
        overflow, pos = unpack_address(blob, pos)
        items = []
        for _ in range(nitems):
            key, value, pos = unpack_item(blob, pos)
            items.append((key, value))
        return cls(address, items, overflow)


class LinearHashIndex(Index):
    """An unordered index over ``(key, EntityAddress)`` pairs."""

    ORDERED = False

    def __init__(
        self,
        store: NodeStore,
        anchor: EntityAddress | None = None,
        initial_buckets: int = 4,
        bucket_capacity: int = 8,
        split_load: float = 0.75,
    ):
        if initial_buckets < 1:
            raise IndexStructureError("need at least one initial bucket")
        if bucket_capacity < 1:
            raise IndexStructureError("bucket_capacity must be positive")
        super().__init__()
        self.store = store
        self.bucket_capacity = bucket_capacity
        self.split_load = split_load
        if anchor is None:
            self._level = 0
            self._split = 0
            self._count = 0
            self._base_buckets = initial_buckets
            self._directory = [
                self._new_bucket().address for _ in range(initial_buckets)
            ]
            self._chunk_addresses: list[EntityAddress] = []
            for start in range(0, len(self._directory), CHUNK_CAPACITY):
                chunk = self._directory[start : start + CHUNK_CAPACITY]
                self._chunk_addresses.append(
                    self.store.allocate(self._encode_chunk(chunk))
                )
            self.anchor = store.allocate(self._encode_anchor())
        else:
            self.anchor = anchor
            self._load_anchor()

    # -- anchor and directory chunks ------------------------------------------------

    def _encode_anchor(self) -> bytes:
        parts = [
            _ANCHOR_HEADER.pack(
                ANCHOR_TYPE,
                self._level,
                self._split,
                self._count,
                len(self._chunk_addresses),
            ),
            struct.pack("<I", self._base_buckets),
        ]
        parts.extend(pack_address(addr) for addr in self._chunk_addresses)
        return b"".join(parts)

    @staticmethod
    def _encode_chunk(addresses: list[EntityAddress]) -> bytes:
        """Chunks are padded to full capacity so they never grow in place
        (in-place growth would need free space the partition may not have)."""
        parts = [_CHUNK_HEADER.pack(CHUNK_TYPE, len(addresses))]
        parts.extend(pack_address(addr) for addr in addresses)
        parts.extend(
            pack_address(NULL_ADDRESS) for _ in range(CHUNK_CAPACITY - len(addresses))
        )
        return b"".join(parts)

    def _decode_chunk(self, address: EntityAddress) -> list[EntityAddress]:
        blob = self.store.read(address)
        chunk_type, count = _CHUNK_HEADER.unpack_from(blob, 0)
        if chunk_type != CHUNK_TYPE:
            raise IndexStructureError("directory chunk entity has wrong type")
        pos = _CHUNK_HEADER.size
        addresses = []
        for _ in range(count):
            bucket_address, pos = unpack_address(blob, pos)
            addresses.append(bucket_address)
        return addresses

    def _load_anchor(self) -> None:
        blob = self.store.read(self.anchor)
        anchor_type, level, split, count, nchunks = _ANCHOR_HEADER.unpack_from(blob, 0)
        if anchor_type != ANCHOR_TYPE:
            raise IndexStructureError("anchor entity has wrong type")
        pos = _ANCHOR_HEADER.size
        (self._base_buckets,) = struct.unpack_from("<I", blob, pos)
        pos += 4
        self._level = level
        self._split = split
        self._chunk_addresses = []
        for _ in range(nchunks):
            address, pos = unpack_address(blob, pos)
            self._chunk_addresses.append(address)
        self._directory = []
        for chunk_address in self._chunk_addresses:
            self._directory.extend(self._decode_chunk(chunk_address))
        # the anchor's count is only persisted at structural changes, so
        # recount on rebuild (mirrors the T-Tree's recovery behaviour)
        self._count = count
        self._count = sum(1 for _ in self.items())

    def _save_anchor(self) -> None:
        self.store.write(self.anchor, self._encode_anchor())

    def _reload_mirror(self) -> None:
        """Re-decode the anchor after a rollback restored its bytes.

        A transaction abort applies byte-level UNDO to the anchor,
        directory chunks, and buckets; the decoded directory, split
        pointer, level, and count held here would otherwise keep the
        rolled-back structure."""
        self._load_anchor()

    def _append_to_directory(self, bucket_address: EntityAddress) -> None:
        """Grow the directory by one bucket, rewriting only the tail chunk
        (or allocating a fresh one when the tail is full)."""
        self._directory.append(bucket_address)
        tail_len = len(self._directory) % CHUNK_CAPACITY or CHUNK_CAPACITY
        tail = self._directory[-tail_len:]
        if tail_len == 1 and len(self._directory) > 1:
            # previous chunk just filled: start a new one
            self._chunk_addresses.append(
                self.store.allocate(self._encode_chunk(tail))
            )
        else:
            self.store.write(
                self._chunk_addresses[-1], self._encode_chunk(tail)
            )

    # -- bucket I/O ---------------------------------------------------------------

    def _new_bucket(self) -> _Bucket:
        bucket = _Bucket(NULL_ADDRESS)
        bucket.address = self.store.allocate(bucket.encode())
        return bucket

    def _load(self, address: EntityAddress) -> _Bucket:
        return _Bucket.decode(address, self.store.read(address))

    def _save(self, bucket: _Bucket) -> None:
        self.store.write(bucket.address, bucket.encode())

    # -- addressing ------------------------------------------------------------------

    def _bucket_number(self, key: Key) -> int:
        h = stable_hash(key)
        number = h % (self._base_buckets << self._level)
        if number < self._split:
            number = h % (self._base_buckets << (self._level + 1))
        return number

    # -- public API ----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @serialised
    def search(self, key: Key) -> list[EntityAddress]:
        address = self._directory[self._bucket_number(key)]
        results = []
        while address != NULL_ADDRESS:
            bucket = self._load(address)
            results.extend(v for k, v in bucket.items if k == key)
            address = bucket.overflow
        return results

    @serialised
    def insert(self, key: Key, value: EntityAddress) -> None:
        head_address = self._directory[self._bucket_number(key)]
        bucket = self._load(head_address)
        # place into the first chain node with room
        while len(bucket.items) >= self.bucket_capacity:
            if bucket.overflow == NULL_ADDRESS:
                overflow = self._new_bucket()
                bucket.overflow = overflow.address
                self._save(bucket)
                bucket = overflow
                break
            bucket = self._load(bucket.overflow)
        bucket.items.append((key, value))
        self._save(bucket)
        self._count += 1
        if self._load_factor() > self.split_load:
            self._split_next()

    @serialised
    def delete(self, key: Key, value: EntityAddress) -> None:
        number = self._bucket_number(key)
        address = self._directory[number]
        previous: _Bucket | None = None
        while address != NULL_ADDRESS:
            bucket = self._load(address)
            if (key, value) in bucket.items:
                bucket.items.remove((key, value))
                self._count -= 1
                if not bucket.items and previous is not None:
                    # unlink the emptied overflow node
                    previous.overflow = bucket.overflow
                    self._save(previous)
                    self.store.free(bucket.address)
                else:
                    self._save(bucket)
                return
            previous = bucket
            address = bucket.overflow
        raise self._not_found(key, value)

    @serialised_scan
    def items(self) -> Iterator[tuple[Key, EntityAddress]]:
        for head in self._directory:
            address = head
            while address != NULL_ADDRESS:
                bucket = self._load(address)
                yield from bucket.items
                address = bucket.overflow

    # -- splitting ----------------------------------------------------------------------------

    def _load_factor(self) -> float:
        return self._count / (len(self._directory) * self.bucket_capacity)

    def _split_next(self) -> None:
        """Split the bucket under the split pointer into itself and a new
        buddy at ``split + base * 2^level``."""
        victim_number = self._split
        buddy_number = victim_number + (self._base_buckets << self._level)
        # collect the whole chain of the victim, freeing overflow nodes
        items: list[tuple[Key, EntityAddress]] = []
        head = self._load(self._directory[victim_number])
        items.extend(head.items)
        address = head.overflow
        while address != NULL_ADDRESS:
            bucket = self._load(address)
            items.extend(bucket.items)
            next_address = bucket.overflow
            self.store.free(bucket.address)
            address = next_address
        buddy = self._new_bucket()
        self._append_to_directory(buddy.address)
        if len(self._directory) != buddy_number + 1:
            raise IndexStructureError("directory out of step with split pointer")
        self._split += 1
        if self._split >= (self._base_buckets << self._level):
            self._split = 0
            self._level += 1
        # redistribute under the *new* addressing (handled by _bucket_number)
        head.items = []
        head.overflow = NULL_ADDRESS
        tails: dict[int, _Bucket] = {victim_number: head, buddy_number: buddy}
        for key, value in items:
            target = self._bucket_number(key)
            if target not in tails:
                raise IndexStructureError(
                    f"rehash sent key to bucket {target}, expected "
                    f"{victim_number} or {buddy_number}"
                )
            tail = tails[target]
            if len(tail.items) >= self.bucket_capacity:
                overflow = self._new_bucket()
                tail.overflow = overflow.address
                self._save(tail)
                tails[target] = overflow
                tail = overflow
            tail.items.append((key, value))
        for tail in tails.values():
            self._save(tail)
        self._save_anchor()

    # -- invariants ---------------------------------------------------------------------------------

    @serialised
    def verify_invariants(self) -> None:
        """Every item must be reachable at its own bucket number, counts
        must agree, and chains must respect capacity."""
        seen = 0
        for number, head in enumerate(self._directory):
            address = head
            while address != NULL_ADDRESS:
                bucket = self._load(address)
                if len(bucket.items) > self.bucket_capacity:
                    raise IndexStructureError(
                        f"bucket {number} chain node exceeds capacity"
                    )
                for key, _ in bucket.items:
                    if self._bucket_number(key) != number:
                        raise IndexStructureError(
                            f"key {key!r} stored in bucket {number}, "
                            f"hashes to {self._bucket_number(key)}"
                        )
                seen += len(bucket.items)
                address = bucket.overflow
        if seen != self._count:
            raise IndexStructureError(
                f"anchor count {self._count} != items present {seen}"
            )

    @property
    def bucket_count(self) -> int:
        return len(self._directory)

    @property
    def level(self) -> int:
        return self._level
