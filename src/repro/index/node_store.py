"""Index components as partition entities.

Every index component (T-Tree node, hash bucket, anchor) is stored as a
serialised entity in a partition of the index's segment.  All mutation
flows through :class:`NodeStore`, which reports each change to a
:class:`ChangeSink` — the transaction layer implements the sink to write
one REDO record per updated component (section 2.3.2), take the
component's before-image for UNDO, and two-phase lock the component.

The store also grows the index segment on demand; new-partition events are
reported to the sink as well, because the catalog must learn about the
partition and the Stable Log Tail must get its bin.
"""

from __future__ import annotations

import threading
from typing import Protocol

from repro.common.errors import PartitionFullError
from repro.common.types import EntityAddress
from repro.storage.partition import Partition
from repro.storage.segment import Segment


class ChangeSink(Protocol):
    """Receives index component change notifications.

    Implemented by the transaction context; a ``None`` sink (bulk loads,
    recovery rebuilds) skips logging and locking entirely.
    """

    def lock_component(self, address: EntityAddress) -> None:
        """Take the two-phase exclusive lock on a component *before* it is
        physically changed.

        Under the no-wait policy a refused lock aborts the transaction on
        the spot — and at that moment no UNDO record for the pending
        change exists yet, so the rollback can only be correct if the
        component is still untouched.  ``NodeStore`` therefore settles the
        lock first and mutates second."""

    def index_node_written(
        self, address: EntityAddress, before: bytes | None, after: bytes
    ) -> None:
        """A component was created (``before is None``) or overwritten."""

    def index_node_freed(self, address: EntityAddress, before: bytes) -> None:
        """A component was released."""

    def partition_allocated(self, partition: Partition) -> None:
        """The segment grew by one partition."""


class NodeStore:
    """Allocate / read / write / free serialised index components.

    New components are only placed in a partition while it is below
    ``1 - growth_reserve`` full: the reserve stays available for in-place
    *growth* of existing components (hash anchors grow with the bucket
    directory; T-Tree nodes grow toward ``max_items``) — the classic
    PCTFREE idea.

    The :attr:`sink` binding is **thread-local**: the database rebinds a
    cached index object's sink to the calling transaction before every
    index operation, and under the concurrent scheduler two workers do
    that simultaneously on the same store.  Assigning ``store.sink = txn``
    only affects the assigning thread; threads that never assigned see the
    constructor-time default (``None`` or the bulk-load transaction).
    """

    def __init__(
        self,
        segment: Segment,
        sink: ChangeSink | None = None,
        growth_reserve: float = 0.15,
    ):
        if not 0.0 <= growth_reserve < 1.0:
            raise ValueError("growth_reserve must be in [0, 1)")
        self.segment = segment
        self._default_sink = sink
        self._sink_override = threading.local()
        self.growth_reserve = growth_reserve

    @property
    def sink(self) -> ChangeSink | None:
        """The calling thread's sink override, else the default."""
        return getattr(self._sink_override, "value", self._default_sink)

    @sink.setter
    def sink(self, value: ChangeSink | None) -> None:
        self._sink_override.value = value

    def with_sink(self, sink: ChangeSink | None) -> "NodeStore":
        """A view of the same segment reporting to a different sink."""
        return NodeStore(self.segment, sink)

    # -- operations -------------------------------------------------------------

    def allocate(self, data: bytes) -> EntityAddress:
        """Store a new component, growing the segment if necessary."""
        partition = self._partition_with_room(len(data))
        offset = partition.insert(data)
        address = EntityAddress(
            partition.address.segment, partition.address.partition, offset
        )
        if self.sink is not None:
            self.sink.index_node_written(address, None, data)
        return address

    def read(self, address: EntityAddress) -> bytes:
        return self.segment.get(address.partition).read(address.offset)

    def write(self, address: EntityAddress, data: bytes) -> None:
        partition = self.segment.get(address.partition)
        sink = self.sink
        if sink is not None:
            # Lock before mutating: a no-wait refusal aborts the calling
            # transaction, and the abort holds no UNDO record for this
            # write yet — the component must still be untouched.
            sink.lock_component(address)
        before = partition.read(address.offset)
        partition.update(address.offset, data)
        if sink is not None:
            sink.index_node_written(address, before, data)

    def free(self, address: EntityAddress) -> None:
        partition = self.segment.get(address.partition)
        sink = self.sink
        if sink is not None:
            sink.lock_component(address)  # see write(): lock, then mutate
        before = partition.read(address.offset)
        partition.delete(address.offset)
        if sink is not None:
            sink.index_node_freed(address, before)

    # -- placement ----------------------------------------------------------------

    def _partition_with_room(self, nbytes: int) -> Partition:
        from repro.storage.partition import ENTITY_HEADER_BYTES

        needed = nbytes + ENTITY_HEADER_BYTES
        for partition in self.segment.resident_partitions():
            reserve = int(partition.entity_capacity * self.growth_reserve)
            if partition.free_bytes - reserve >= needed:
                return partition
        entity_capacity, _ = self.segment.fresh_partition_capacities()
        if needed > entity_capacity:
            raise PartitionFullError(
                f"index component of {nbytes} bytes exceeds partition capacity"
            )
        partition = self.segment.allocate_partition()
        if self.sink is not None:
            self.sink.partition_allocated(partition)
        return partition
