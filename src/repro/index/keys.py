"""Index key encoding.

Keys are Python ``int``, ``str`` or ``bytes`` values.  They are stored
inside serialised index components with a one-byte type tag; a single
index holds keys of a single type (mixing types raises
:class:`IndexStructureError` at the comparison site, where it is cheap to
detect).

Integer keys are encoded two's-complement big-endian with the sign bit
flipped, so ``sorted(encoded) == encode(sorted(decoded))`` — handy for
tests and for any future byte-wise comparisons — though the indexes
compare *decoded* keys.
"""

from __future__ import annotations

import struct

from repro.common.errors import IndexStructureError

_TAG_INT = 0
_TAG_BYTES = 1
_TAG_STR = 2

Key = int | str | bytes

_INT_BIAS = 1 << 63


def encode_key(key: Key) -> bytes:
    """Serialise one key with its type tag."""
    if isinstance(key, bool):  # bool is an int subclass; reject explicitly
        raise IndexStructureError("bool is not a valid index key")
    if isinstance(key, int):
        if not -_INT_BIAS <= key < _INT_BIAS:
            raise IndexStructureError(f"integer key {key} out of 64-bit range")
        return bytes([_TAG_INT]) + struct.pack(">Q", key + _INT_BIAS)
    if isinstance(key, bytes):
        return bytes([_TAG_BYTES]) + key
    if isinstance(key, str):
        return bytes([_TAG_STR]) + key.encode("utf-8")
    raise IndexStructureError(f"unsupported key type {type(key).__name__}")


def decode_key(blob: bytes) -> Key:
    """Reverse :func:`encode_key`."""
    if not blob:
        raise IndexStructureError("empty key encoding")
    tag, payload = blob[0], blob[1:]
    if tag == _TAG_INT:
        (biased,) = struct.unpack(">Q", payload)
        return biased - _INT_BIAS
    if tag == _TAG_BYTES:
        return payload
    if tag == _TAG_STR:
        return payload.decode("utf-8")
    raise IndexStructureError(f"unknown key tag {tag}")


def compare_keys(a: Key, b: Key) -> int:
    """Three-way comparison; rejects mixed-type keys."""
    if type(a) is not type(b):
        raise IndexStructureError(
            f"cannot compare {type(a).__name__} key with {type(b).__name__} key"
        )
    if a < b:  # type: ignore[operator]
        return -1
    if a > b:  # type: ignore[operator]
        return 1
    return 0
