"""The T-Tree: the MM-DBMS ordered index (Lehman & Carey, VLDB 1986).

A T-Tree is an AVL-balanced binary tree whose nodes each hold many sorted
``(key, value)`` items.  A node *bounds* a key when ``min <= key <= max``
of its items; search descends by comparing against node bounds, so most
comparisons stay inside one node.

Every node lives as a serialised component in the index segment via
:class:`~repro.index.node_store.NodeStore`, so each structural change
(item insert, rotation, node split/merge) reports the precise set of
updated components — exactly the per-component REDO records of paper
section 2.3.2 ("a tree update operation can modify several tree nodes,
thus generating several different log records").

Nodes are addressed by :class:`EntityAddress` and rewritten in place;
rotations change child pointers, never addresses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import IndexStructureError
from repro.common.types import EntityAddress
from repro.index.base import (
    NULL_ADDRESS,
    Index,
    pack_address,
    pack_item,
    serialised,
    serialised_scan,
    unpack_address,
    unpack_item,
)
from repro.index.keys import Key, compare_keys
from repro.index.node_store import NodeStore

_NODE_HEADER = struct.Struct("<BhH")  # type, height, nitems
_ANCHOR_HEADER = struct.Struct("<BHH")  # type, min_items, max_items

NODE_TYPE = 0x54  # 'T'
ANCHOR_TYPE = 0x41  # 'A'

Item = tuple[Key, EntityAddress]


def compare_items(a: Item, b: Item) -> int:
    """Compound comparison: by key, then by value address.

    Every stored item is unique under this ordering (a tuple is indexed at
    one address), which keeps equal *keys* contiguous in tree order while
    restoring strict BST ordering — the classical rowid-suffix trick for
    duplicate keys.
    """
    by_key = compare_keys(a[0], b[0])
    if by_key:
        return by_key
    if a[1] < b[1]:
        return -1
    if a[1] > b[1]:
        return 1
    return 0


@dataclass
class _TNode:
    """Deserialised working copy of one T-Tree node."""

    address: EntityAddress
    height: int = 1
    items: list[tuple[Key, EntityAddress]] = field(default_factory=list)
    left: EntityAddress = NULL_ADDRESS
    right: EntityAddress = NULL_ADDRESS

    # -- serialisation ----------------------------------------------------------

    def encode(self) -> bytes:
        parts = [
            _NODE_HEADER.pack(NODE_TYPE, self.height, len(self.items)),
            pack_address(self.left),
            pack_address(self.right),
        ]
        parts.extend(pack_item(key, value) for key, value in self.items)
        return b"".join(parts)

    @classmethod
    def decode(cls, address: EntityAddress, blob: bytes) -> "_TNode":
        node_type, height, nitems = _NODE_HEADER.unpack_from(blob, 0)
        if node_type != NODE_TYPE:
            raise IndexStructureError(
                f"entity at {address} is not a T-Tree node (type {node_type})"
            )
        pos = _NODE_HEADER.size
        left, pos = unpack_address(blob, pos)
        right, pos = unpack_address(blob, pos)
        items = []
        for _ in range(nitems):
            key, value, pos = unpack_item(blob, pos)
            items.append((key, value))
        return cls(address, height, items, left, right)

    # -- item helpers ---------------------------------------------------------------

    @property
    def min_key(self) -> Key:
        return self.items[0][0]

    @property
    def max_key(self) -> Key:
        return self.items[-1][0]

    @property
    def min_item(self) -> tuple[Key, EntityAddress]:
        return self.items[0]

    @property
    def max_item(self) -> tuple[Key, EntityAddress]:
        return self.items[-1]

    def bounds(self, item: tuple[Key, EntityAddress]) -> bool:
        return (
            bool(self.items)
            and compare_items(item, self.min_item) >= 0
            and compare_items(item, self.max_item) <= 0
        )

    def insert_item(self, item: tuple[Key, EntityAddress]) -> None:
        position = self._bisect(item)
        self.items.insert(position, item)

    def _bisect(self, item: tuple[Key, EntityAddress]) -> int:
        lo, hi = 0, len(self.items)
        while lo < hi:
            mid = (lo + hi) // 2
            if compare_items(self.items[mid], item) <= 0:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def values_for(self, key: Key) -> list[EntityAddress]:
        return [value for item_key, value in self.items if compare_keys(item_key, key) == 0]


class TTreeIndex(Index):
    """An ordered index over ``(key, EntityAddress)`` pairs."""

    ORDERED = True

    def __init__(
        self,
        store: NodeStore,
        anchor: EntityAddress | None = None,
        min_items: int = 4,
        max_items: int = 8,
    ):
        if not 1 <= min_items <= max_items:
            raise IndexStructureError("need 1 <= min_items <= max_items")
        super().__init__()
        self.store = store
        self.min_items = min_items
        self.max_items = max_items
        self._root = NULL_ADDRESS
        self._count = 0
        if anchor is None:
            self.anchor = store.allocate(self._encode_anchor())
        else:
            self.anchor = anchor
            self._load_anchor()
            self._count = sum(1 for _ in self.items())

    # -- anchor ------------------------------------------------------------------

    def _encode_anchor(self) -> bytes:
        return (
            _ANCHOR_HEADER.pack(ANCHOR_TYPE, self.min_items, self.max_items)
            + pack_address(self._root)
        )

    def _load_anchor(self) -> None:
        blob = self.store.read(self.anchor)
        anchor_type, min_items, max_items = _ANCHOR_HEADER.unpack_from(blob, 0)
        if anchor_type != ANCHOR_TYPE:
            raise IndexStructureError("anchor entity has wrong type")
        self.min_items = min_items
        self.max_items = max_items
        self._root, _ = unpack_address(blob, _ANCHOR_HEADER.size)

    def _reload_mirror(self) -> None:
        """Re-decode the anchor after a rollback restored its bytes.

        A transaction abort applies byte-level UNDO to the anchor and
        nodes; the decoded root address and item count held here would
        otherwise keep the rolled-back structure."""
        self._load_anchor()
        self._count = sum(1 for _ in self.items())

    def _set_root(self, address: EntityAddress) -> None:
        if address != self._root:
            self._root = address
            self.store.write(self.anchor, self._encode_anchor())

    # -- node I/O ------------------------------------------------------------------

    def _load(self, address: EntityAddress) -> _TNode:
        return _TNode.decode(address, self.store.read(address))

    def _save(self, node: _TNode) -> None:
        self.store.write(node.address, node.encode())

    def _new_node(self, items: list[tuple[Key, EntityAddress]]) -> _TNode:
        node = _TNode(NULL_ADDRESS, 1, items)
        node.address = self.store.allocate(node.encode())
        return node

    # -- public API --------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @serialised
    def search(self, key: Key) -> list[EntityAddress]:
        return self._collect(self._root, key)

    def _collect(self, address: EntityAddress, key: Key) -> list[EntityAddress]:
        """Gather every value stored under ``key``.

        Equal keys are contiguous in compound order but may straddle node
        boundaries, so when the key equals a node's min (max) the left
        (right) subtree is searched as well.
        """
        if address == NULL_ADDRESS:
            return []
        node = self._load(address)
        low = compare_keys(key, node.min_key)
        high = compare_keys(key, node.max_key)
        if low < 0:
            return self._collect(node.left, key)
        if high > 0:
            return self._collect(node.right, key)
        results = []
        if low == 0:
            results.extend(self._collect(node.left, key))
        results.extend(node.values_for(key))
        if high == 0:
            results.extend(self._collect(node.right, key))
        return results

    @serialised
    def insert(self, key: Key, value: EntityAddress) -> None:
        item = (key, value)
        if self._root == NULL_ADDRESS:
            root = self._new_node([item])
            self._set_root(root.address)
            self._count += 1
            return
        path = self._descend_for_insert(item)
        node = path[-1]
        if node.bounds(item) and len(node.items) >= self.max_items:
            # Bounding node is full: the new item displaces the node's
            # minimum, which is reinserted at its greatest-lower-bound
            # position in the left subtree.
            displaced = node.items.pop(0)
            node.insert_item(item)
            self._save(node)
            self._insert_displaced(path, displaced)
        elif len(node.items) < self.max_items:
            node.insert_item(item)
            self._save(node)
        else:
            # Non-bounding full node at the end of the search path: hang a
            # new leaf on the proper side.
            leaf = self._new_node([item])
            if compare_items(item, node.min_item) < 0:
                node.left = leaf.address
            else:
                node.right = leaf.address
            self._save(node)
            self._rebalance_path(path)
        self._count += 1

    @serialised
    def delete(self, key: Key, value: EntityAddress) -> None:
        item = (key, value)
        path: list[_TNode] = []
        address = self._root
        node = None
        while address != NULL_ADDRESS:
            node = self._load(address)
            path.append(node)
            if compare_items(item, node.min_item) < 0:
                address = node.left
            elif compare_items(item, node.max_item) > 0:
                address = node.right
            else:
                break
        else:
            raise self._not_found(key, value)
        if node is None or item not in node.items:
            raise self._not_found(key, value)
        node.items.remove(item)
        self._count -= 1
        self._fix_after_delete(path)

    @serialised_scan
    def items(self) -> Iterator[tuple[Key, EntityAddress]]:
        yield from self._in_order(self._root)

    def _in_order(self, address: EntityAddress) -> Iterator[tuple[Key, EntityAddress]]:
        if address == NULL_ADDRESS:
            return
        node = self._load(address)
        yield from self._in_order(node.left)
        yield from node.items
        yield from self._in_order(node.right)

    @serialised_scan
    def range_scan(
        self, low: Key | None = None, high: Key | None = None
    ) -> Iterator[tuple[Key, EntityAddress]]:
        """Items with ``low <= key <= high`` in key order (None = open end)."""
        for key, value in self.items():
            if low is not None and compare_keys(key, low) < 0:
                continue
            if high is not None and compare_keys(key, high) > 0:
                break
            yield key, value

    # -- insert internals -------------------------------------------------------------------

    def _descend_for_insert(self, item: Item) -> list[_TNode]:
        """Path from root to the bounding node or the last node searched."""
        path: list[_TNode] = []
        address = self._root
        while address != NULL_ADDRESS:
            node = self._load(address)
            path.append(node)
            if node.bounds(item):
                break
            if compare_items(item, node.min_item) < 0:
                address = node.left
            else:
                address = node.right
        return path

    def _insert_displaced(self, path: list[_TNode], item: Item) -> None:
        """Reinsert the displaced minimum at its greatest-lower-bound spot."""
        bounding = path[-1]
        if bounding.left == NULL_ADDRESS:
            leaf = self._new_node([item])
            bounding.left = leaf.address
            self._save(bounding)
            self._rebalance_path(path)
            return
        address = bounding.left
        while True:
            node = self._load(address)
            path.append(node)
            if node.right == NULL_ADDRESS:
                break
            address = node.right
        glb = path[-1]
        if len(glb.items) < self.max_items:
            glb.items.append(item)  # item > every key in the glb node
            self._save(glb)
            return
        leaf = self._new_node([item])
        glb.right = leaf.address
        self._save(glb)
        self._rebalance_path(path)

    # -- delete internals ------------------------------------------------------------------------

    def _fix_after_delete(self, path: list[_TNode]) -> None:
        node = path[-1]
        has_left = node.left != NULL_ADDRESS
        has_right = node.right != NULL_ADDRESS
        if has_left and has_right:
            if len(node.items) < self.min_items:
                self._refill_internal(path)
            else:
                self._save(node)
            return
        if node.items:
            self._save(node)
            return
        # Empty leaf or half-leaf: splice it out of the tree.
        child = node.left if has_left else (node.right if has_right else NULL_ADDRESS)
        self._replace_child(path, node, child)
        self.store.free(node.address)
        path.pop()
        self._rebalance_path(path)

    def _refill_internal(self, path: list[_TNode]) -> None:
        """Refill an underflowing internal node from its left subtree's
        greatest lower bound (the rightmost node on the left)."""
        node = path[-1]
        donor_path = [node]
        address = node.left
        while True:
            donor = self._load(address)
            donor_path.append(donor)
            if donor.right == NULL_ADDRESS:
                break
            address = donor.right
        donor = donor_path[-1]
        node.items.insert(0, donor.items.pop())
        self._save(node)
        full_path = path + donor_path[1:]
        self._fix_after_delete(full_path)

    def _replace_child(
        self, path: list[_TNode], node: _TNode, replacement: EntityAddress
    ) -> None:
        if len(path) < 2:
            self._set_root(replacement)
            return
        parent = path[-2]
        if parent.left == node.address:
            parent.left = replacement
        elif parent.right == node.address:
            parent.right = replacement
        else:
            raise IndexStructureError(
                f"{node.address} is not a child of {parent.address}"
            )
        self._save(parent)

    # -- balancing -------------------------------------------------------------------------------

    def _height(self, address: EntityAddress) -> int:
        if address == NULL_ADDRESS:
            return 0
        return self._load(address).height

    def _rebalance_path(self, path: list[_TNode]) -> None:
        """Walk from the deepest touched node to the root, updating heights
        and rotating where the AVL condition breaks."""
        child_address: EntityAddress | None = None
        for depth in range(len(path) - 1, -1, -1):
            node = self._load(path[depth].address)  # reload: may be stale
            new_address = self._rebalance_node(node)
            if child_address is not None and new_address != child_address:
                pass  # child already linked by rotation bookkeeping
            if depth > 0:
                parent = self._load(path[depth - 1].address)
                changed = False
                if parent.left == node.address and new_address != node.address:
                    parent.left = new_address
                    changed = True
                elif parent.right == node.address and new_address != node.address:
                    parent.right = new_address
                    changed = True
                if changed:
                    self._save(parent)
            elif new_address != self._root:
                self._set_root(new_address)
            child_address = new_address

    def _rebalance_node(self, node: _TNode) -> EntityAddress:
        """Fix one node's height / balance; returns the subtree's new root."""
        balance = self._height(node.left) - self._height(node.right)
        if balance > 1:
            left = self._load(node.left)
            if self._height(left.left) >= self._height(left.right):
                return self._rotate_right(node)
            node.left = self._rotate_left(left)
            self._save(node)
            return self._rotate_right(self._load(node.address))
        if balance < -1:
            right = self._load(node.right)
            if self._height(right.right) >= self._height(right.left):
                return self._rotate_left(node)
            node.right = self._rotate_right(right)
            self._save(node)
            return self._rotate_left(self._load(node.address))
        self._update_height(node)
        return node.address

    def _update_height(self, node: _TNode) -> None:
        new_height = 1 + max(self._height(node.left), self._height(node.right))
        if new_height != node.height:
            node.height = new_height
        self._save(node)

    def _rotate_right(self, node: _TNode) -> EntityAddress:
        pivot = self._load(node.left)
        node.left = pivot.right
        self._update_height(node)
        pivot.right = node.address
        self._slide_fill(pivot)
        self._update_height(pivot)
        return pivot.address

    def _rotate_left(self, node: _TNode) -> EntityAddress:
        pivot = self._load(node.right)
        node.right = pivot.left
        self._update_height(node)
        pivot.left = node.address
        self._slide_fill(pivot)
        self._update_height(pivot)
        return pivot.address

    def _slide_fill(self, node: _TNode) -> None:
        """T-Tree special-rotation fix: a node promoted to an internal
        position with very few items steals greatest-lower-bound items
        from its left child so searches keep terminating at bounding
        nodes (Lehman 86c's special LR/RL rotation)."""
        if (
            node.left == NULL_ADDRESS
            or node.right == NULL_ADDRESS
            or len(node.items) >= self.min_items
        ):
            return
        left = self._load(node.left)
        if left.right != NULL_ADDRESS or not left.items:
            return
        take = min(
            len(left.items) - self.min_items // 2,
            self.min_items - len(node.items),
        )
        if take <= 0:
            return
        moved = left.items[-take:]
        del left.items[-take:]
        node.items[:0] = moved
        if left.items:
            self._save(left)
        else:
            node.left = left.left
            self.store.free(left.address)

    # -- invariants -------------------------------------------------------------------------------

    @serialised
    def verify_invariants(self) -> None:
        """Check BST ordering, AVL balance, stored heights and item sorting."""
        all_items = list(self.items())
        for first, second in zip(all_items, all_items[1:]):
            if compare_items(first, second) >= 0:
                raise IndexStructureError("in-order traversal is not strictly sorted")
        self._verify_node(self._root)

    def _verify_node(self, address: EntityAddress) -> int:
        if address == NULL_ADDRESS:
            return 0
        node = self._load(address)
        if not node.items:
            raise IndexStructureError(f"empty node at {address}")
        for item_a, item_b in zip(node.items, node.items[1:]):
            if compare_items(item_a, item_b) >= 0:
                raise IndexStructureError(f"unsorted items in node {address}")
        if len(node.items) > self.max_items:
            raise IndexStructureError(f"node {address} overflows max_items")
        left_height = self._verify_node(node.left)
        right_height = self._verify_node(node.right)
        if abs(left_height - right_height) > 1:
            raise IndexStructureError(f"AVL balance violated at {address}")
        height = 1 + max(left_height, right_height)
        if node.height != height:
            raise IndexStructureError(
                f"stored height {node.height} != actual {height} at {address}"
            )
        if node.left != NULL_ADDRESS:
            left_max = self._load_subtree_max(node.left)
            if compare_items(left_max, node.min_item) >= 0:
                raise IndexStructureError(f"left subtree overlaps node {address}")
        if node.right != NULL_ADDRESS:
            right_min = self._load_subtree_min(node.right)
            if compare_items(right_min, node.max_item) <= 0:
                raise IndexStructureError(f"right subtree overlaps node {address}")
        return height

    def _load_subtree_max(self, address: EntityAddress) -> Item:
        node = self._load(address)
        while node.right != NULL_ADDRESS:
            node = self._load(node.right)
        return node.max_item

    def _load_subtree_min(self, address: EntityAddress) -> Item:
        node = self._load(address)
        while node.left != NULL_ADDRESS:
            node = self._load(node.left)
        return node.min_item
