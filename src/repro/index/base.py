"""Common index interface and shared serialisation helpers."""

from __future__ import annotations

import functools
import struct
import threading
from typing import Any, Callable, Iterator, TypeVar

from repro.common.errors import IndexStructureError
from repro.common.types import EntityAddress
from repro.index.keys import Key, decode_key, encode_key

#: Null component pointer.
NULL_ADDRESS = EntityAddress(-1, -1, -1)

_ADDRESS = struct.Struct("<iiq")
_U16 = struct.Struct("<H")


def pack_address(address: EntityAddress) -> bytes:
    return _ADDRESS.pack(address.segment, address.partition, address.offset)


def unpack_address(buf: bytes, pos: int) -> tuple[EntityAddress, int]:
    segment, partition, offset = _ADDRESS.unpack_from(buf, pos)
    return EntityAddress(segment, partition, offset), pos + _ADDRESS.size


def pack_item(key: Key, value: EntityAddress) -> bytes:
    encoded = encode_key(key)
    return _U16.pack(len(encoded)) + encoded + pack_address(value)


def unpack_item(buf: bytes, pos: int) -> tuple[Key, EntityAddress, int]:
    (key_len,) = _U16.unpack_from(buf, pos)
    pos += _U16.size
    key = decode_key(buf[pos : pos + key_len])
    pos += key_len
    value, pos = unpack_address(buf, pos)
    return key, value, pos


_F = TypeVar("_F", bound=Callable[..., Any])


def serialised(method: _F) -> _F:
    """Run an index operation under the index's structure mutex.

    Entity-level 2PL locks serialise access to any one *component*, but a
    multi-node structural change (a T-Tree rotation, a linear-hash split)
    passes through intermediate states that a concurrent reader or writer
    on another worker thread must never observe.  The mutex is re-entrant
    (splits call back into the locked paths) and sits *above* the storage
    leaf mutexes and the no-wait entity locks the sink acquires: a
    conflict abort raised mid-operation unwinds through the ``with`` and
    releases it.
    """

    @functools.wraps(method)
    def wrapper(self: "Index", *args: Any, **kwargs: Any) -> Any:
        with self._structure_mutex:
            self._refresh_mirror_if_stale()
            return method(self, *args, **kwargs)

    return wrapper  # type: ignore[return-value]


def serialised_scan(method: Callable[..., Iterator[Any]]) -> Callable[..., Iterator[Any]]:
    """Like :func:`serialised` for generator methods: the scan is
    materialised under the mutex so iteration never interleaves with a
    structural change on another thread."""

    @functools.wraps(method)
    def wrapper(self: "Index", *args: Any, **kwargs: Any) -> Iterator[Any]:
        with self._structure_mutex:
            self._refresh_mirror_if_stale()
            return iter(list(method(self, *args, **kwargs)))

    return wrapper


class Index:
    """Interface shared by the T-Tree and the linear hash index.

    Values are entity addresses (of relation tuples).  Duplicate keys are
    permitted; ``(key, value)`` pairs are unique.
    """

    #: Set by subclasses: True when the index supports range scans.
    ORDERED: bool = False

    def __init__(self) -> None:
        #: See :func:`serialised` — whole-structure mutex for operations
        #: whose intermediate states must stay invisible across threads.
        self._structure_mutex = threading.RLock()
        #: See :meth:`mark_mirror_stale`.
        self._mirror_stale = False

    # -- mirror staleness ---------------------------------------------------------

    def mark_mirror_stale(self) -> None:
        """A rollback restored this index's component bytes: the decoded
        anchor state held on the object (bucket directory, split pointer,
        root address, item count) no longer matches them.

        The reload happens *lazily* at the start of the next serialised
        operation, under the structure mutex — reloading eagerly from the
        aborting transaction could nest another index's structure mutex
        under one this thread already holds mid-unwind, inviting a
        lock-order cycle.  The flag flip itself is atomic under the GIL.
        """
        self._mirror_stale = True

    def _refresh_mirror_if_stale(self) -> None:
        """Called by :func:`serialised` with the structure mutex held."""
        if self._mirror_stale:
            self._mirror_stale = False
            self._reload_mirror()

    def _reload_mirror(self) -> None:
        """Re-decode anchor state from component bytes (subclass hook)."""
        raise NotImplementedError

    def insert(self, key: Key, value: EntityAddress) -> None:
        raise NotImplementedError

    def delete(self, key: Key, value: EntityAddress) -> None:
        raise NotImplementedError

    def search(self, key: Key) -> list[EntityAddress]:
        raise NotImplementedError

    def items(self) -> Iterator[tuple[Key, EntityAddress]]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def verify_invariants(self) -> None:
        """Raise :class:`IndexStructureError` on any structural violation."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------

    @staticmethod
    def _not_found(key: Key, value: EntityAddress) -> IndexStructureError:
        return IndexStructureError(f"({key!r}, {value}) not present in index")
