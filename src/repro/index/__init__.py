"""Main-memory index structures (the Lehman 86c substrate).

The paper's MM-DBMS indexes relations with T-Trees and Modified Linear
Hashing; index *components* (tree nodes, hash buckets, anchors) are
entities in index-segment partitions, each component update producing one
REDO log record (section 2.3.2).

* :mod:`repro.index.keys` — order-preserving key encoding.
* :mod:`repro.index.node_store` — components as partition entities, with
  the change hooks that feed logging and locking.
* :mod:`repro.index.ttree` — the T-Tree ordered index.
* :mod:`repro.index.linear_hash` — Modified Linear Hashing.
"""

from repro.index.base import Index
from repro.index.keys import decode_key, encode_key
from repro.index.linear_hash import LinearHashIndex
from repro.index.node_store import ChangeSink, NodeStore
from repro.index.ttree import TTreeIndex

__all__ = [
    "ChangeSink",
    "Index",
    "LinearHashIndex",
    "NodeStore",
    "TTreeIndex",
    "decode_key",
    "encode_key",
]
