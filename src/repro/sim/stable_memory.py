"""Stable reliable memory.

The paper's design rests on a few megabytes of RAM that is both *stable*
(survives power loss) and *reliable* (protected from wild stores by a
failed main CPU), at the cost of being 2-4x slower than ordinary memory
(section 1).  :class:`StableMemory` models the allocator for one such
region: capacity-tracked named allocations whose contents survive the
simulated crash because the crash controller never touches them.

Objects stored here are plain Python objects.  We deliberately do not
serialise them — the stable RAM of the paper is byte-addressable memory
holding live data structures, not a device with a wire format.  The
capacity charge for each allocation is declared by the caller, which lets
the Stable Log Buffer and Stable Log Tail account their block and bin
budgets exactly as sections 2.3.1 and 2.3.3 describe.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from repro.common.errors import StableMemoryFullError


class StableMemory:
    """A capacity-tracked region of stable reliable RAM.

    The allocator is thread-safe: under the threaded engine the main CPU
    allocates SLB blocks while the recovery thread releases drained ones,
    so the allocation table and the used-byte ledger mutate under one
    internal lock.  (The paper's stable RAM has exactly this property —
    both processors address it directly.)
    """

    def __init__(self, name: str, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._allocations: dict[str, tuple[int, Any]] = {}
        self._used = 0
        self._lock = threading.RLock()

    # -- allocation ------------------------------------------------------------

    def allocate(self, key: str, nbytes: int, value: Any = None) -> None:
        """Reserve ``nbytes`` under ``key`` and store ``value`` there.

        Raises :class:`StableMemoryFullError` when the region is exhausted —
        the condition the paper handles by stalling the main CPU's log
        writes until the recovery CPU drains the buffer.
        """
        if nbytes < 0:
            raise ValueError("allocation size cannot be negative")
        with self._lock:
            if key in self._allocations:
                raise KeyError(f"stable memory {self.name!r} already holds {key!r}")
            if self._used + nbytes > self.capacity_bytes:
                raise StableMemoryFullError(
                    f"stable memory {self.name!r} full: "
                    f"{self._used} + {nbytes} > {self.capacity_bytes} bytes"
                )
            self._allocations[key] = (nbytes, value)
            self._used += nbytes

    def store(self, key: str, value: Any) -> None:
        """Overwrite the value of an existing allocation (size unchanged)."""
        with self._lock:
            nbytes, _ = self._require(key)
            self._allocations[key] = (nbytes, value)

    def load(self, key: str) -> Any:
        """Read the value stored under ``key``."""
        return self._require(key)[1]

    def release(self, key: str) -> None:
        """Free an allocation."""
        with self._lock:
            nbytes, _ = self._require(key)
            del self._allocations[key]
            self._used -= nbytes

    def resize(self, key: str, nbytes: int) -> None:
        """Change the capacity charge of an existing allocation."""
        if nbytes < 0:
            raise ValueError("allocation size cannot be negative")
        with self._lock:
            old_bytes, value = self._require(key)
            if self._used - old_bytes + nbytes > self.capacity_bytes:
                raise StableMemoryFullError(
                    f"stable memory {self.name!r} full resizing {key!r}"
                )
            self._allocations[key] = (nbytes, value)
            self._used += nbytes - old_bytes

    def _require(self, key: str) -> tuple[int, Any]:
        try:
            return self._allocations[key]
        except KeyError:
            raise KeyError(f"stable memory {self.name!r} has no allocation {key!r}") from None

    # -- inspection --------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._allocations

    def keys(self) -> Iterator[str]:
        return iter(self._allocations)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def __repr__(self) -> str:
        return (
            f"StableMemory(name={self.name!r}, used={self._used}, "
            f"capacity={self.capacity_bytes})"
        )
