"""Instruction-count accounting for the simulated processors.

The paper's performance analysis (section 3) is entirely in instructions:
each recovery-CPU operation has a Table 2 cost, and throughput is MIPS
divided by instructions per unit of work.  :class:`CpuMeter` charges those
costs against a :class:`~repro.sim.clock.VirtualClock` and keeps per-category
totals so benchmarks can compare the *measured* simulated instruction stream
against the closed-form model.

A generic instruction costs ``1 / MIPS`` seconds.  Accesses to stable
reliable memory are slower by ``AnalysisParameters.stable_memory_slowdown``;
callers charge those through :meth:`CpuMeter.charge_stable_bytes`.
"""

from __future__ import annotations

import threading
from collections import Counter

from repro.common.config import AnalysisParameters
from repro.sim.clock import VirtualClock, host_pause


class CpuMeter:
    """Accounts simulated instructions (and time) for one processor.

    Counter updates are atomic: under the threaded engine a meter may be
    charged from the recovery thread while the main thread reads it (the
    monitor, the benchmarks), so each charge is one locked read-modify-write
    and the totals are interleaving-independent.
    """

    def __init__(
        self,
        name: str,
        mips: float,
        clock: VirtualClock,
        params: AnalysisParameters | None = None,
    ):
        if mips <= 0.0:
            raise ValueError("mips must be positive")
        self.name = name
        self.mips = mips
        self.clock = clock
        self.params = params if params is not None else AnalysisParameters()
        self._by_category: Counter[str] = Counter()
        self._total_instructions = 0.0
        self._lock = threading.Lock()
        #: Host seconds slept per simulated second charged (0.0 = purely
        #: simulated).  Mirrors ``SimulatedDisk.realtime_scale``: with a
        #: positive scale, concurrent transaction workers pay their
        #: instruction costs in overlapped *host* time, which is what
        #: ``bench_txn_throughput`` measures.  The sleep happens outside
        #: ``_lock`` so meter readers never block on it.
        self.realtime_scale = 0.0
        #: Optional host-pause perturbation (chaos latency injection);
        #: mirrors ``SimulatedDisk.latency_injector``.
        self.latency_injector = None

    # -- charging -----------------------------------------------------------

    def charge(self, instructions: float, category: str = "other") -> float:
        """Execute ``instructions`` generic instructions.

        Returns the simulated seconds consumed.  Time is also advanced on
        the shared clock, which models the (single-threaded, cooperative)
        interleaving used throughout the simulation.
        """
        if instructions < 0.0:
            raise ValueError("cannot charge a negative instruction count")
        with self._lock:
            self._by_category[category] += instructions
            self._total_instructions += instructions
        seconds = instructions / (self.mips * 1_000_000.0)
        self.clock.advance(seconds)
        scale = self.realtime_scale
        injector = self.latency_injector
        if scale or injector is not None:
            pause = seconds * scale
            if injector is not None:
                pause = injector(pause)
            host_pause(pause)
        return seconds

    def charge_stable_bytes(self, nbytes: int, category: str = "stable-copy") -> float:
        """Charge a byte copy that touches stable reliable memory.

        The per-byte cost is Table 2's ``I_copy_add`` scaled by the stable
        memory slowdown, plus the fixed ``I_copy_fixed`` start-up cost.
        """
        if nbytes < 0:
            raise ValueError("cannot copy a negative number of bytes")
        cost = (
            self.params.i_copy_fixed
            + self.params.i_copy_add * self.params.stable_memory_slowdown * nbytes
        )
        return self.charge(cost, category)

    # -- inspection ----------------------------------------------------------

    @property
    def total_instructions(self) -> float:
        return self._total_instructions

    def instructions_in(self, category: str) -> float:
        return float(self._by_category.get(category, 0.0))

    def category_breakdown(self) -> dict[str, float]:
        """Instruction totals keyed by charge category."""
        with self._lock:
            return dict(self._by_category)

    def busy_seconds(self) -> float:
        """Simulated seconds this processor has spent executing."""
        return self._total_instructions / (self.mips * 1_000_000.0)

    def reset(self) -> None:
        """Zero the counters (the clock is left untouched)."""
        with self._lock:
            self._by_category.clear()
            self._total_instructions = 0.0

    def __repr__(self) -> str:
        return (
            f"CpuMeter(name={self.name!r}, mips={self.mips}, "
            f"total={self._total_instructions:.0f} instr)"
        )
