"""Simulated hardware substrate.

The paper assumes hardware that does not exist on a laptop: a dedicated
1-MIPS recovery processor, tens of megabytes of stable *and* reliable RAM,
and duplexed two-head log disks.  This package simulates each of them:

* :mod:`repro.sim.clock` — a virtual clock; all timing in the system is
  simulated time, never wall-clock time.
* :mod:`repro.sim.cpu` — instruction-count accounting per processor,
  parameterised by the paper's Table 2 costs.
* :mod:`repro.sim.disk` — a durable, block-addressed disk with the paper's
  seek/rotate/transfer timing, surviving simulated crashes.
* :mod:`repro.sim.stable_memory` — capacity-tracked stable reliable RAM.
* :mod:`repro.sim.faults` — crash and torn-write injection.
* :mod:`repro.sim.chaos` — the named crash-point registry and the sweep
  harness that crashes a workload at every point and verifies recovery.
"""

from repro.sim.chaos import (
    ChaosHarness,
    ChaosMonkey,
    CrashPointRun,
    chaos,
    crash_point,
    register_crash_point,
    registered_crash_points,
)
from repro.sim.clock import VirtualClock
from repro.sim.cpu import CpuMeter
from repro.sim.disk import CORRUPTION_KINDS, DuplexedDisk, SimulatedDisk
from repro.sim.faults import CrashInjector, SimulatedCrash, TornWriteError
from repro.sim.stable_memory import StableMemory

__all__ = [
    "CORRUPTION_KINDS",
    "ChaosHarness",
    "ChaosMonkey",
    "CpuMeter",
    "CrashInjector",
    "CrashPointRun",
    "DuplexedDisk",
    "SimulatedCrash",
    "SimulatedDisk",
    "StableMemory",
    "TornWriteError",
    "VirtualClock",
    "chaos",
    "crash_point",
    "register_crash_point",
    "registered_crash_points",
]
