"""The torture harness: seeded randomized chaos rounds.

The chaos *sweep* proves exact recovery for every crash point under the
cooperative schedule.  This module attacks the claim the sweep cannot
reach: real thread interleavings.  Each **round** runs a concurrent
debit/credit workload — on :class:`~repro.engine.threaded.ThreadedEngine`
worker threads genuinely interleave — under a randomly generated
:class:`~repro.sim.chaos.ChaosPlan` (crash rules, latency jitter through
the ``realtime_scale`` bridges, transient I/O faults into the duplex
retry loops), then crashes, restarts, and checks the recovered state.

Everything random in a round derives from one integer seed: the plan,
the workload skew, the latency scales.  A failing round raises
:class:`TortureFailure` carrying the exact command line that replays it.

Verification is layered to stay honest about thread nondeterminism:

* **Exact digest** — a sequential tail of transactions runs under a
  :class:`~repro.recovery.oracle.RecoveryVerifier`; after crash +
  restart the recovered digest must be byte-identical to the digest at
  the last durable commit.  (Digest-at-commit is only well defined while
  a single thread mutates, hence the quiesced tail.)
* **Bank invariants** — after any recovery, committed debit/credit
  transactions must be atomic across all four relations: with ``C``
  history rows, accounts total ``1000·N + 10·C`` and tellers and
  branches each total ``10·C``.  This catches a torn transaction even
  when the crash landed mid-pool where no digest can be recorded.
* **Recovery stability** — recovering, crashing again with no new work,
  and recovering again must reproduce the identical digest (recovery is
  a fixed point).
* **Fault accounting** — every injected transient fault must be counted
  by the retry layer, and plans keep per-rule fires within the retry
  budget, so a round with faults must see zero ``MediaFailure``
  escalations.

Run from the command line::

    python -m repro.sim.torture --seed 7 --rounds 3 --engine threaded \
        --workers 4 --kinds crash latency fault --log rounds.jsonl
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.errors import RecoveryError, ReproError
from repro.db.database import Database, RecoveryMode
from repro.engine import SimEngine, ThreadedEngine
from repro.recovery.oracle import RecoveryVerifier, logical_digest
from repro.sim.chaos import (
    ChaosEngine,
    ChaosPlan,
    ChaosRule,
    chaos,
    install_latency,
    registered_crash_points,
    registered_fault_points,
    remove_latency,
)
from repro.sim.clock import host_now
from repro.sim.faults import SimulatedCrash
from repro.txn.concurrent import ConcurrentScheduler
from repro.workloads.debit_credit import DebitCreditWorkload

#: The three round kinds (what the generated plan emphasises).
KINDS = ("crash", "latency", "fault")

#: Crash-during-restart retries; plan crash rules latch after max_fires,
#: so convergence is guaranteed — the bound is defensive.
MAX_RESTART_ATTEMPTS = 6

#: Concurrent scripts per round / sequential tail transactions.
POOL_SCRIPTS = 16
TAIL_TRANSACTIONS = 10

#: Sized like the chaos sweep's scenario: small pages and a tight window
#: so a short workload still crosses checkpoints and window slides.
ROUND_CONFIG = dict(
    log_page_size=512,
    update_count_threshold=16,
    log_window_pages=64,
    log_window_grace_pages=8,
)


class TortureFailure(ReproError):
    """A round's recovered state failed verification (or a round died on
    an unexpected error).  The message carries the reproducing command."""


@dataclass(frozen=True)
class RoundSpec:
    """Everything that determines one round."""

    seed: int
    kind: str
    engine: str = "threaded"
    workers: int = 4
    #: ``shards > 1`` runs the round against a ShardedDatabase cluster
    #: (whole-cluster crash, per-shard bank invariants) instead of a
    #: single node.
    shards: int = 1
    #: Run the round with background condensing enabled, so the condense
    #: crash points and the shadow-image restart path sit in the blast
    #: radius (docs/CONDENSING.md).
    condense: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown round kind {self.kind!r}; expected {KINDS}")
        if self.engine not in ("sim", "threaded"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")

    def repro_command(self) -> str:
        command = (
            f"PYTHONPATH=src python -m repro.sim.torture --seed {self.seed} "
            f"--rounds 1 --kinds {self.kind} --engine {self.engine} "
            f"--workers {self.workers}"
        )
        if self.shards > 1:
            command += f" --shards {self.shards}"
        if self.condense:
            command += " --condense"
        return command


@dataclass
class RoundResult:
    """Outcome of one verified round."""

    seed: int
    kind: str
    engine: str
    workers: int
    #: Committed transactions that survived recovery (debit/credits on a
    #: single node, scheduler-routed transfers on a sharded round).
    committed: int
    crashes_fired: int
    faults_fired: int
    latency_fired: int
    restart_attempts: int
    #: Which checks ran: "digest" (exact tail digest) or "invariants"
    #: (the crash landed mid-pool, before a digest could be recorded).
    verified_by: str
    digest: str
    host_seconds: float
    shards: int = 1
    condense: bool = False

    def to_json(self) -> dict:
        return dict(self.__dict__)


def build_plan(spec: RoundSpec, rng: random.Random) -> ChaosPlan:
    """Generate the round's injection plan from its seed.

    Pure function of ``(spec, rng state)``: the same seed always yields
    the same plan, which is what makes a failed round replayable.
    """
    crash_points = sorted(registered_crash_points())
    fault_points = sorted(registered_fault_points())
    rules: list[ChaosRule] = []
    if spec.kind == "crash":
        prefix = None
        if spec.engine == "threaded":
            prefix = rng.choice([None, None, "repro-txn-worker", "repro-restore"])
        rules.append(
            ChaosRule(
                point=rng.choice(crash_points),
                action="crash",
                after_visits=rng.randint(0, 12),
                thread_prefix=prefix,
            )
        )
    if spec.kind == "fault":
        for point in rng.sample(fault_points, k=rng.randint(1, 2)):
            # max_fires stays within the default retry budget so every
            # burst is absorbed; the escalation boundary has its own
            # dedicated tests (tests/test_transient_io.py).
            rules.append(
                ChaosRule(
                    point=point,
                    action="fault",
                    probability=rng.uniform(0.4, 1.0),
                    after_visits=rng.randint(0, 4),
                    max_fires=rng.randint(1, 4),
                )
            )
    # Every kind gets background latency so worker threads reorder; the
    # "latency" kind simply makes it the whole story.
    latency_rules = 3 if spec.kind == "latency" else 1
    for point in rng.sample(crash_points + fault_points, k=latency_rules):
        rules.append(
            ChaosRule(
                point=point,
                action="latency",
                probability=rng.uniform(0.2, 0.6),
                max_fires=None,
                latency_range=(0.00005, 0.0008),
            )
        )
    return ChaosPlan(spec.seed, tuple(rules))


def _debit_credit_script(workload: DebitCreditWorkload, hid: int, aid: int):
    """A replayable concurrent script mirroring ``run_transaction``."""
    tid = aid % workload.tellers
    bid = aid % workload.branches

    def script(txn):
        account = workload.account_rel.read(txn, workload._account_addr[aid])
        yield
        workload.account_rel.update(
            txn, workload._account_addr[aid], {"balance": account["balance"] + 10}
        )
        yield
        teller = workload.teller_rel.read(txn, workload._teller_addr[tid])
        workload.teller_rel.update(
            txn, workload._teller_addr[tid], {"balance": teller["balance"] + 10}
        )
        yield
        branch = workload.branch_rel.read(txn, workload._branch_addr[bid])
        workload.branch_rel.update(
            txn, workload._branch_addr[bid], {"balance": branch["balance"] + 10}
        )
        yield
        workload.history_rel.insert(txn, {"hid": hid, "aid": aid, "delta": 10})

    return script


class TortureHarness:
    """Runs and verifies seeded chaos rounds."""

    def run_round(self, spec: RoundSpec) -> RoundResult:
        started = host_now()
        try:
            if spec.shards > 1:
                result = self._run_sharded_round_inner(spec)
            else:
                result = self._run_round_inner(spec)
        except TortureFailure as exc:
            raise TortureFailure(
                f"{exc}; reproduce with: {spec.repro_command()}"
            ) from exc
        except BaseException as exc:
            raise TortureFailure(
                f"torture round seed={spec.seed} kind={spec.kind} "
                f"engine={spec.engine} workers={spec.workers} failed: {exc!r}; "
                f"reproduce with: {spec.repro_command()}"
            ) from exc
        result.host_seconds = host_now() - started
        return result

    def _run_round_inner(self, spec: RoundSpec) -> RoundResult:
        rng = random.Random(spec.seed)
        engine = (
            SimEngine() if spec.engine == "sim" else ThreadedEngine(spec.workers)
        )
        db = Database(
            SystemConfig(**ROUND_CONFIG, condense_enabled=spec.condense),
            engine=engine,
        )
        try:
            workload = DebitCreditWorkload(
                db,
                branches=2,
                tellers_per_branch=2,
                accounts_per_branch=25,
                seed=spec.seed,
            )
            workload.load()
            plan = build_plan(spec, rng)
            injector = ChaosEngine(plan)
            install_latency(
                db,
                injector,
                disk_scale=rng.uniform(0.002, 0.01),
                cpu_scale=rng.uniform(1.0, 8.0),
                jitter=(0.0, 0.0005),
            )
            recovery_mode = rng.choice([RecoveryMode.EAGER, RecoveryMode.ON_DEMAND])

            crashed_mid_pool = False
            verifier: RecoveryVerifier | None = None
            with chaos(injector):
                # Phase 1 — concurrent stress under the plan.
                try:
                    self._run_pool(db, workload, rng, spec)
                except SimulatedCrash:
                    crashed_mid_pool = True
                if not crashed_mid_pool:
                    # Phase 2 — quiesce, then an exactly-verifiable
                    # sequential tail (single mutator, digest per commit).
                    db.pump()
                    verifier = RecoveryVerifier(db)
                    try:
                        for _ in range(TAIL_TRANSACTIONS):
                            workload.run_transaction()
                    except SimulatedCrash:
                        pass
                # Phase 3 — die and come back (restart-path rules may
                # crash recovery itself; the latch bounds the retries).
                if not db.crashed:
                    db.crash()
                restart_attempts = self._restart_until_recovered(
                    db, recovery_mode
                )
            if verifier is not None:
                verifier.detach()
                verifier.verify()
            digest = self._check_invariants(db, workload)
            self._check_recovery_stability(db, recovery_mode, digest)
            self._check_fault_accounting(db, injector)
            commits = self._count_history(db)
        finally:
            remove_latency(db)
            db.close()
        return RoundResult(
            seed=spec.seed,
            kind=spec.kind,
            engine=spec.engine,
            workers=spec.workers,
            committed=commits,
            crashes_fired=injector.crashes_fired,
            faults_fired=injector.faults_fired,
            latency_fired=injector.latency_fired,
            restart_attempts=restart_attempts,
            verified_by="invariants" if verifier is None else "digest",
            digest=digest,
            host_seconds=0.0,
            condense=spec.condense,
        )

    def _run_sharded_round_inner(self, spec: RoundSpec) -> RoundResult:
        """A round against a sharded cluster: routed workload under the
        plan, whole-cluster crash, per-shard restart, per-shard bank
        conservation plus digest stability on every node."""
        from repro.shard import ShardedDatabase, ShardedScheduler
        from repro.workloads.sharded_bank import ShardedBankWorkload

        rng = random.Random(spec.seed)
        cluster = ShardedDatabase(
            shards=spec.shards,
            config=SystemConfig(**ROUND_CONFIG, condense_enabled=spec.condense),
            engine=spec.engine,
            workers=spec.workers,
        )
        try:
            bank = ShardedBankWorkload(
                cluster,
                accounts_per_shard=16,
                cross_ratio=0.25,
                seed=spec.seed,
            )
            bank.load()
            plan = build_plan(spec, rng)
            injector = ChaosEngine(plan)
            disk_scale = rng.uniform(0.002, 0.01)
            cpu_scale = rng.uniform(1.0, 8.0)
            for node in cluster.nodes:
                install_latency(
                    node.db,
                    injector,
                    disk_scale=disk_scale,
                    cpu_scale=cpu_scale,
                    jitter=(0.0, 0.0005),
                )
            recovery_mode = rng.choice([RecoveryMode.EAGER, RecoveryMode.ON_DEMAND])
            with chaos(injector):
                scheduler = ShardedScheduler(
                    cluster, max_attempts=500, workers=spec.workers
                )
                bank.submit(scheduler, POOL_SCRIPTS)
                try:
                    scheduler.run()
                except SimulatedCrash:
                    pass
                # Whole-cluster power failure, then bring every node back
                # (in-doubt branches resolve against the stable decision
                # tables during each node's restart).
                cluster.crash()
                restart_attempts = self._restart_cluster_until_recovered(
                    cluster, recovery_mode
                )
            try:
                bank.check_invariants()
            except AssertionError as exc:
                raise TortureFailure(str(exc)) from exc
            if cluster.twopc.pending_gtids():
                raise TortureFailure(
                    f"recovery left distributed txns in flight: "
                    f"{cluster.twopc.pending_gtids()}"
                )
            digests = cluster.digests()
            self._check_sharded_stability(cluster, recovery_mode, digests)
            self._check_sharded_fault_accounting(cluster, injector)
            # The stable SLB commit counters survive the crash (the
            # manager's in-memory tallies do not).
            committed = sum(node.db.slb.commits for node in cluster.nodes)
        finally:
            for node in cluster.nodes:
                remove_latency(node.db)
            cluster.close()
        digest = "|".join(f"{sid}:{d[:16]}" for sid, d in sorted(digests.items()))
        return RoundResult(
            seed=spec.seed,
            kind=spec.kind,
            engine=spec.engine,
            workers=spec.workers,
            committed=committed,
            crashes_fired=injector.crashes_fired,
            faults_fired=injector.faults_fired,
            latency_fired=injector.latency_fired,
            restart_attempts=restart_attempts,
            verified_by="invariants",
            digest=digest,
            host_seconds=0.0,
            shards=spec.shards,
            condense=spec.condense,
        )

    # -- phases ---------------------------------------------------------------

    def _run_pool(
        self,
        db: Database,
        workload: DebitCreditWorkload,
        rng: random.Random,
        spec: RoundSpec,
    ) -> None:
        scheduler = ConcurrentScheduler(
            db, max_attempts=500, workers=spec.workers
        )
        base_hid = workload._history_id
        for i in range(POOL_SCRIPTS):
            aid = rng.randrange(workload.accounts)
            scheduler.submit(
                _debit_credit_script(workload, base_hid + 1 + i, aid),
                name=f"torture-{i}",
            )
        # Tail transactions must mint fresh history ids whether or not
        # every pool script committed.
        workload._history_id = base_hid + POOL_SCRIPTS
        scheduler.run()

    def _restart_until_recovered(
        self, db: Database, mode: RecoveryMode
    ) -> int:
        for attempt in range(1, MAX_RESTART_ATTEMPTS + 1):
            try:
                if db.crashed:
                    db.restart(mode)
                if db.restart_coordinator is not None:
                    db.restart_coordinator.recover_everything()
                return attempt
            except SimulatedCrash:
                db.crash()
        raise RecoveryError(
            f"restart did not converge in {MAX_RESTART_ATTEMPTS} attempts"
        )

    def _restart_cluster_until_recovered(self, cluster, mode: RecoveryMode) -> int:
        for attempt in range(1, MAX_RESTART_ATTEMPTS + 1):
            try:
                for node in cluster.nodes:
                    if node.crashed:
                        node.restart(mode)
                    node.recover_everything()
                return attempt
            except SimulatedCrash:
                # Re-crash the whole cluster: recovery is idempotent, and
                # the latch on crash rules bounds the retries.
                for node in cluster.nodes:
                    if not node.crashed:
                        node.crash()
        raise RecoveryError(
            f"cluster restart did not converge in {MAX_RESTART_ATTEMPTS} attempts"
        )

    # -- checks ---------------------------------------------------------------

    def _count_history(self, db: Database) -> int:
        history = db.table("history")
        with db.transaction() as txn:
            return sum(1 for _ in history.scan(txn))

    def _check_invariants(
        self, db: Database, workload: DebitCreditWorkload
    ) -> str:
        """Atomicity across the four relations, from recovered state alone."""

        def total(name: str) -> int:
            with db.transaction() as txn:
                return sum(row["balance"] for row in db.table(name).scan(txn))

        with db.transaction() as txn:
            hids = [row["hid"] for row in db.table("history").scan(txn)]
        if len(hids) != len(set(hids)):
            raise TortureFailure("recovered history holds duplicate ids")
        commits = len(hids)
        expected_accounts = 1000 * workload.accounts + 10 * commits
        checks = [
            ("account", total("account"), expected_accounts),
            ("teller", total("teller"), 10 * commits),
            ("branch", total("branch"), 10 * commits),
        ]
        for name, actual, expected in checks:
            if actual != expected:
                raise TortureFailure(
                    f"recovered {name} total {actual} != expected {expected} "
                    f"({commits} committed debit/credits survived)"
                )
        return logical_digest(db)

    def _check_recovery_stability(
        self, db: Database, mode: RecoveryMode, digest: str
    ) -> None:
        """Recovery must be a fixed point: crash again with no new work,
        recover, and land on the byte-identical digest."""
        db.crash()
        self._restart_until_recovered(db, mode)
        again = logical_digest(db)
        if again != digest:
            raise TortureFailure(
                f"recovery is not stable: second recovery digest "
                f"{again[:16]}… != first {digest[:16]}…"
            )

    def _check_sharded_stability(
        self, cluster, mode: RecoveryMode, digests: dict[int, str]
    ) -> None:
        """Every node's recovery must be a fixed point, cluster-wide."""
        cluster.crash()
        self._restart_cluster_until_recovered(cluster, mode)
        again = cluster.digests()
        if again != digests:
            changed = sorted(
                sid for sid in digests if again.get(sid) != digests[sid]
            )
            raise TortureFailure(
                f"sharded recovery is not stable: shards {changed} produced "
                f"different digests on the second recovery"
            )

    def _check_sharded_fault_accounting(self, cluster, injector: ChaosEngine) -> None:
        counted = sum(
            node.db.log_disk.io_stats.faults
            + node.db.checkpoint_disk.io_stats.faults
            for node in cluster.nodes
        )
        if counted != injector.faults_fired:
            raise TortureFailure(
                f"retry layers counted {counted} transient faults but the "
                f"plan injected {injector.faults_fired}"
            )
        escalations = sum(
            node.db.log_disk.io_stats.escalations
            + node.db.checkpoint_disk.io_stats.escalations
            for node in cluster.nodes
        )
        if escalations:
            raise TortureFailure(
                f"{escalations} transient faults escalated to MediaFailure "
                f"despite per-rule fires within the retry budget"
            )

    def _check_fault_accounting(
        self, db: Database, injector: ChaosEngine
    ) -> None:
        counted = db.log_disk.io_stats.faults + db.checkpoint_disk.io_stats.faults
        injected = injector.faults_fired
        if counted != injected:
            raise TortureFailure(
                f"retry layer counted {counted} transient faults but the "
                f"plan injected {injected}"
            )
        escalations = (
            db.log_disk.io_stats.escalations
            + db.checkpoint_disk.io_stats.escalations
        )
        if escalations:
            raise TortureFailure(
                f"{escalations} transient faults escalated to MediaFailure "
                f"despite per-rule fires within the retry budget"
            )

    # -- batches --------------------------------------------------------------

    def run_rounds(
        self,
        seeds: list[int],
        kinds: tuple[str, ...] = KINDS,
        engine: str = "threaded",
        workers: int = 4,
        shards: int = 1,
        condense: bool = False,
        on_result=None,
    ) -> list[RoundResult]:
        """Run every (seed, kind) combination; the first failure raises
        with its reproducing seed, so a returned list means all passed."""
        results = []
        for seed in seeds:
            for kind in kinds:
                result = self.run_round(
                    RoundSpec(seed, kind, engine, workers, shards, condense)
                )
                if on_result is not None:
                    on_result(result)
                results.append(result)
        return results


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="Seeded chaos torture rounds against the recovery system."
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--rounds", type=int, default=3, help="seeds per kind")
    parser.add_argument(
        "--kinds", nargs="+", choices=KINDS, default=list(KINDS)
    )
    parser.add_argument("--engine", choices=("sim", "threaded"), default="threaded")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run each round against a cluster of this many shard nodes",
    )
    parser.add_argument(
        "--condense",
        action="store_true",
        help="enable background condensing for every round, putting the "
        "condense crash points and the shadow-image restart path in play "
        "(docs/CONDENSING.md)",
    )
    parser.add_argument(
        "--log", default=None, help="append one JSON line per round here"
    )
    args = parser.parse_args(argv)

    log_file = open(args.log, "a", encoding="utf-8") if args.log else None
    harness = TortureHarness()

    def report(result: RoundResult) -> None:
        line = result.to_json()
        if log_file is not None:
            log_file.write(json.dumps(line) + "\n")
            log_file.flush()
        topology = "" if result.shards == 1 else f" shards={result.shards}"
        if result.condense:
            topology += " condense"
        print(
            f"round seed={result.seed} kind={result.kind} "
            f"engine={result.engine}{topology} ok: {result.committed} commits, "
            f"{result.crashes_fired} crashes / {result.faults_fired} faults "
            f"/ {result.latency_fired} latency fires, "
            f"verified by {result.verified_by}"
        )

    try:
        harness.run_rounds(
            seeds=[args.seed + i for i in range(args.rounds)],
            kinds=tuple(args.kinds),
            engine=args.engine,
            workers=args.workers,
            shards=args.shards,
            condense=args.condense,
            on_result=report,
        )
    except TortureFailure as failure:
        if log_file is not None:
            log_file.write(json.dumps({"failure": str(failure)}) + "\n")
        print(f"FAILED: {failure}", file=sys.stderr)
        return 1
    finally:
        if log_file is not None:
            log_file.close()
    print(f"all {args.rounds * len(args.kinds)} rounds passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
