"""Fault injection for the crash experiments.

The paper motivates recovery with power loss, chip burnout, and runaway
software (section 1).  All of them share one observable effect in our
model: *volatile state is gone, stable state survives*.
:class:`CrashInjector` lets tests and benchmarks trigger that effect at a
deterministic point — after a chosen number of operations — so crash
scenarios are reproducible.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ReproError


class TornWriteError(ReproError):
    """A disk block was only partially written when the system crashed."""


class SimulatedCrash(ReproError):
    """Raised at the injected crash point; the harness catches it and calls
    ``Database.crash()``."""


class CrashInjector:
    """Counts down operations and raises :class:`SimulatedCrash` at zero.

    Usage::

        injector = CrashInjector(after_operations=100)
        ...
        injector.tick()   # call once per guarded operation

    A disabled injector (``after_operations=None``) ticks for free, so the
    hook can stay in place on hot paths.
    """

    def __init__(
        self,
        after_operations: int | None = None,
        on_crash: Callable[[], None] | None = None,
    ):
        if after_operations is not None and after_operations < 1:
            raise ValueError("after_operations must be at least 1")
        self._remaining = after_operations
        self._on_crash = on_crash
        self.fired = False

    @property
    def armed(self) -> bool:
        return self._remaining is not None and not self.fired

    def tick(self) -> None:
        """Register one operation; crash when the countdown is exhausted."""
        if self._remaining is None or self.fired:
            return
        self._remaining -= 1
        if self._remaining <= 0:
            # Latch before the callback: if ``on_crash`` re-enters tick()
            # (e.g. it flushes through an instrumented path) the injector
            # must not fire a second time, and the crash must propagate
            # even when the callback itself raises.
            self.fired = True
            self._remaining = None
            try:
                if self._on_crash is not None:
                    self._on_crash()
            finally:
                raise SimulatedCrash("injected crash point reached")

    def disarm(self) -> None:
        self._remaining = None

    def rearm(self, after_operations: int) -> None:
        if after_operations < 1:
            raise ValueError("after_operations must be at least 1")
        self._remaining = after_operations
        self.fired = False

    def reset(self) -> None:
        """Return to the pristine disabled state (harness reuse)."""
        self._remaining = None
        self.fired = False
