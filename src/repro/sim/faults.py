"""Fault injection for the crash experiments.

The paper motivates recovery with power loss, chip burnout, and runaway
software (section 1).  All of them share one observable effect in our
model: *volatile state is gone, stable state survives*.
:class:`CrashInjector` lets tests and benchmarks trigger that effect at a
deterministic point — after a chosen number of operations — so crash
scenarios are reproducible.

Beyond whole-system crashes, real devices also fail *transiently*: a
controller hiccup or bus timeout makes one operation fail while the
media underneath is fine.  :class:`TransientIOError` models that class,
:class:`RetryPolicy` bounds how hard the duplex I/O layers retry before
escalating to a hard :class:`~repro.common.errors.MediaFailure`, and
:class:`TransientIOStats` counts what happened so
``Database.stats()`` / ``Monitor.snapshot()`` can surface it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.common.errors import MediaFailure, ReproError
from repro.sim.clock import host_pause


class TornWriteError(ReproError):
    """A disk block was only partially written when the system crashed."""


class SimulatedCrash(ReproError):
    """Raised at the injected crash point; the harness catches it and calls
    ``Database.crash()``."""


class TransientIOError(ReproError):
    """A device operation failed transiently (controller hiccup, dropped
    interrupt, bus timeout): the same operation, retried, may well
    succeed.  Distinct from :class:`~repro.common.errors.MediaFailure`,
    which means the data is genuinely gone on every copy."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient device faults.

    ``budget`` retries are allowed per *operation*; the fault that
    exhausts the budget escalates to
    :class:`~repro.common.errors.MediaFailure`.  Backoff is exponential
    in host time (simulated time is untouched, so metered totals stay
    interleaving-independent) and deliberately tiny — it exists to let
    worker threads reorder, not to model a real controller's timings.
    """

    budget: int = 4
    backoff_base: float = 0.0002
    backoff_cap: float = 0.002

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("retry budget cannot be negative")
        if self.backoff_base < 0.0 or self.backoff_cap < 0.0:
            raise ValueError("backoff times cannot be negative")

    def backoff_seconds(self, attempt: int) -> float:
        """Host seconds to pause before retry ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


class TransientIOStats:
    """Thread-safe counters for one device's transient-fault history.

    ``faults`` counts every transient error observed, ``retries`` the
    ones absorbed within the budget, ``escalations`` the ones that
    became a hard :class:`~repro.common.errors.MediaFailure` — split by
    read/write side so tests can pin exactly which path escalated.
    """

    _KINDS = ("read", "write")

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._counts: dict[str, int] = {
            f"{kind}_{what}": 0
            for kind in self._KINDS
            for what in ("faults", "retries", "escalations")
        }

    def record_fault(self, kind: str) -> None:
        with self._mutex:
            self._counts[f"{kind}_faults"] += 1

    def record_retry(self, kind: str) -> None:
        with self._mutex:
            self._counts[f"{kind}_retries"] += 1

    def record_escalation(self, kind: str) -> None:
        with self._mutex:
            self._counts[f"{kind}_escalations"] += 1

    @property
    def faults(self) -> int:
        with self._mutex:
            return self._counts["read_faults"] + self._counts["write_faults"]

    @property
    def retries(self) -> int:
        with self._mutex:
            return self._counts["read_retries"] + self._counts["write_retries"]

    @property
    def escalations(self) -> int:
        with self._mutex:
            return (
                self._counts["read_escalations"] + self._counts["write_escalations"]
            )

    def snapshot(self) -> dict[str, int]:
        with self._mutex:
            return dict(self._counts)


_T = TypeVar("_T")


def run_with_retry(
    operation: Callable[[], _T],
    policy: RetryPolicy,
    stats: TransientIOStats,
    kind: str,
    context: str,
) -> _T:
    """Run ``operation``, absorbing transient faults within the budget.

    Each :class:`TransientIOError` is counted; faults within the budget
    back off in host time and retry, the one past it escalates to
    :class:`~repro.common.errors.MediaFailure` (counted separately).
    Every other exception — including a hard ``MediaFailure`` from the
    device itself — passes through untouched.
    """
    attempt = 0
    while True:
        try:
            return operation()
        except TransientIOError as exc:
            attempt += 1
            stats.record_fault(kind)
            if attempt > policy.budget:
                stats.record_escalation(kind)
                raise MediaFailure(
                    f"{context}: transient I/O fault persisted past the "
                    f"retry budget ({policy.budget}): {exc}"
                ) from exc
            stats.record_retry(kind)
            host_pause(policy.backoff_seconds(attempt))


class CrashInjector:
    """Counts down operations and raises :class:`SimulatedCrash` at zero.

    Usage::

        injector = CrashInjector(after_operations=100)
        ...
        injector.tick()   # call once per guarded operation

    A disabled injector (``after_operations=None``) ticks for free, so the
    hook can stay in place on hot paths.
    """

    def __init__(
        self,
        after_operations: int | None = None,
        on_crash: Callable[[], None] | None = None,
    ):
        if after_operations is not None and after_operations < 1:
            raise ValueError("after_operations must be at least 1")
        self._remaining = after_operations
        self._on_crash = on_crash
        self.fired = False

    @property
    def armed(self) -> bool:
        return self._remaining is not None and not self.fired

    def tick(self) -> None:
        """Register one operation; crash when the countdown is exhausted."""
        if self._remaining is None or self.fired:
            return
        self._remaining -= 1
        if self._remaining <= 0:
            # Latch before the callback: if ``on_crash`` re-enters tick()
            # (e.g. it flushes through an instrumented path) the injector
            # must not fire a second time, and the crash must propagate
            # even when the callback itself raises.
            self.fired = True
            self._remaining = None
            try:
                if self._on_crash is not None:
                    self._on_crash()
            finally:
                raise SimulatedCrash("injected crash point reached")

    def disarm(self) -> None:
        self._remaining = None

    def rearm(self, after_operations: int) -> None:
        if after_operations < 1:
            raise ValueError("after_operations must be at least 1")
        self._remaining = after_operations
        self.fired = False

    def reset(self) -> None:
        """Return to the pristine disabled state (harness reuse)."""
        self._remaining = None
        self.fired = False
