"""Simulated disks.

A :class:`SimulatedDisk` is a block-addressed, durable byte store with the
paper's timing model: seeks, rotational latency, and separate page-rate /
track-rate transfers (section 3.1 — partitions are written in whole tracks
at double the individual-page rate; log-disk sectors are interleaved so
back-to-back page writes do not lose a revolution).

Contents survive simulated crashes — the crash controller clears volatile
state only.  Media failure is out of scope here, exactly as in the paper
(section 2.6 defers it to classical archive recovery), but torn page writes
*are* modelled so the duplexed log-disk pair of section 2.2 has something
to protect against: see :class:`DuplexedDisk`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.common.checksum import open_frame, seal_frame
from repro.common.config import DiskParameters
from repro.common.errors import ChecksumError, MediaFailure
from repro.sim.clock import VirtualClock, host_pause
from repro.sim.faults import TornWriteError

#: Corruption kinds accepted by :meth:`SimulatedDisk.corrupt_block`.
CORRUPTION_KINDS = ("torn", "bit-flip", "zero-fill", "stale-version")


@dataclass
class DiskStats:
    """Operation counters for one simulated disk."""

    page_reads: int = 0
    page_writes: int = 0
    track_reads: int = 0
    track_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_seconds: float = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "track_reads": self.track_reads,
            "track_writes": self.track_writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "busy_seconds": self.busy_seconds,
        }


@dataclass
class _Block:
    data: bytes
    #: False when the block was the target of an injected torn write.
    intact: bool = True
    #: The block's previous contents, kept so a "stale-version" corruption
    #: can resurrect them (a write the drive acknowledged but never made
    #: durable, leaving the old sector image in place).
    previous: bytes | None = None


class SimulatedDisk:
    """One durable, block-addressed disk with simulated timing."""

    def __init__(
        self,
        name: str,
        params: DiskParameters,
        clock: VirtualClock,
    ):
        self.name = name
        self.params = params
        self.clock = clock
        self.stats = DiskStats()
        self._blocks: dict[int, _Block] = {}
        #: When set, the next write is torn: the block is left unreadable.
        self._tear_next_write = False
        #: Host seconds slept per simulated device second (0.0 = purely
        #: simulated).  The threaded engine's restore benchmark raises this
        #: so overlapped device waits cost overlapped wall time; the sleep
        #: happens outside the block mutex, so concurrent readers overlap.
        self.realtime_scale = 0.0
        #: Optional host-pause perturbation (chaos latency injection).
        #: Receives the pause computed from ``realtime_scale`` and returns
        #: the pause to actually take; seeded jitter here makes threaded
        #: workers reorder reproducibly (see ``repro.sim.chaos.install_latency``).
        self.latency_injector = None
        #: Guards the block table and stats — the recovery thread flushes
        #: log pages while restore workers read checkpoint tracks.
        self._mutex = threading.RLock()

    # -- fault injection ------------------------------------------------------

    def inject_torn_write(self) -> None:
        """Arrange for the next write to be torn (half-written)."""
        self._tear_next_write = True

    def corrupt_block(self, block_id: int, kind: str = "bit-flip") -> None:
        """Damage a stored block in place.

        Kinds (:data:`CORRUPTION_KINDS`):

        * ``"torn"`` — mark the block half-written (self-reporting read).
        * ``"bit-flip"`` — flip one bit in the middle of the data; only a
          checksum can catch this.
        * ``"zero-fill"`` — replace the contents with zeros (a remapped
          or never-written sector).
        * ``"stale-version"`` — resurrect the block's previous contents
          (a lost write); falls back to zero-fill when the block was
          never overwritten.
        """
        with self._mutex:
            try:
                block = self._blocks[block_id]
            except KeyError:
                raise KeyError(
                    f"disk {self.name!r} has no block {block_id}"
                ) from None
        if kind == "torn":
            block.intact = False
        elif kind == "bit-flip":
            data = bytearray(block.data)
            if not data:
                raise ValueError(f"block {block_id} is empty; nothing to flip")
            data[len(data) // 2] ^= 0x40
            block.data = bytes(data)
        elif kind == "zero-fill":
            block.data = b"\x00" * len(block.data)
        elif kind == "stale-version":
            if block.previous is not None:
                block.data = block.previous
            else:
                block.data = b"\x00" * len(block.data)
        else:
            raise ValueError(
                f"unknown corruption kind {kind!r}; expected one of {CORRUPTION_KINDS}"
            )

    # -- writes ---------------------------------------------------------------

    def write_page(self, block_id: int, data: bytes, *, sibling: bool = False) -> None:
        """Write one individually addressed page."""
        seconds = self.params.page_write_time(len(data), sibling=sibling)
        with self._mutex:
            self.stats.page_writes += 1
            self._store(block_id, data)
        self._account_write(seconds)

    def write_track(self, block_id: int, data: bytes) -> None:
        """Write whole tracks (used for partition checkpoint images)."""
        seconds = self.params.track_write_time(len(data))
        with self._mutex:
            self.stats.track_writes += 1
            self._store(block_id, data)
        self._account_write(seconds)

    def mirror_store(self, block_id: int, data: bytes) -> None:
        """Store bytes as the mirror half of a duplexed write.

        The mirror's transfer overlaps the primary's in real hardware, so
        the shared clock is not advanced a second time — only this disk's
        own stats record the write.
        """
        with self._mutex:
            self.stats.page_writes += 1
            self._store(block_id, data)

    def _store(self, block_id: int, data: bytes) -> None:
        # caller holds self._mutex
        intact = not self._tear_next_write
        self._tear_next_write = False
        old = self._blocks.get(block_id)
        previous = old.data if old is not None and old.intact else None
        self._blocks[block_id] = _Block(bytes(data), intact=intact, previous=previous)
        self.stats.bytes_written += len(data)

    def _account_write(self, seconds: float) -> None:
        with self._mutex:
            self.stats.busy_seconds += seconds
        self.clock.advance(seconds)
        self._bridge_pause(seconds)

    # -- reads ----------------------------------------------------------------

    def read_page(self, block_id: int, *, sibling: bool = False) -> bytes:
        with self._mutex:
            block = self._fetch(block_id)
            self.stats.page_reads += 1
        seconds = self.params.page_read_time(len(block.data), sibling=sibling)
        self._account_read(seconds, len(block.data))
        return block.data

    def read_track(self, block_id: int) -> bytes:
        with self._mutex:
            block = self._fetch(block_id)
            self.stats.track_reads += 1
        seconds = self.params.track_read_time(len(block.data))
        self._account_read(seconds, len(block.data))
        return block.data

    def _fetch(self, block_id: int) -> _Block:
        # caller holds self._mutex
        try:
            block = self._blocks[block_id]
        except KeyError:
            raise KeyError(f"disk {self.name!r} has no block {block_id}") from None
        if not block.intact:
            raise TornWriteError(
                f"disk {self.name!r} block {block_id} was torn by a crash"
            )
        return block

    def _account_read(self, seconds: float, nbytes: int) -> None:
        with self._mutex:
            self.stats.busy_seconds += seconds
            self.stats.bytes_read += nbytes
        self.clock.advance(seconds)
        self._bridge_pause(seconds)

    def _bridge_pause(self, seconds: float) -> None:
        # Host-time bridge: near-free (two attribute loads) when neither
        # realtime scaling nor chaos latency is installed.
        scale = self.realtime_scale
        injector = self.latency_injector
        if scale or injector is not None:
            pause = seconds * scale
            if injector is not None:
                pause = injector(pause)
            host_pause(pause)

    # -- inspection -----------------------------------------------------------

    def contains(self, block_id: int) -> bool:
        return block_id in self._blocks

    def free(self, block_id: int) -> None:
        """Release a block (space reclamation; no timing charged)."""
        with self._mutex:
            self._blocks.pop(block_id, None)

    def destroy(self) -> int:
        """Media failure: every block on this spindle is lost.

        Returns the number of blocks destroyed.  Recovery from this is
        the archive-recovery problem of paper section 2.6.
        """
        with self._mutex:
            lost = len(self._blocks)
            self._blocks.clear()
            return lost

    def block_ids(self) -> list[int]:
        with self._mutex:
            return sorted(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        return f"SimulatedDisk(name={self.name!r}, blocks={len(self._blocks)})"


class DuplexedDisk:
    """A mirrored pair of log disks (paper section 2.2).

    Writes are CRC32-framed and go to both spindles; reads verify the
    frame and are served from the primary, failing over to the mirror on
    a torn write *or* a checksum mismatch.  When both copies are bad the
    data is genuinely lost and :class:`~repro.common.errors.MediaFailure`
    escalates to archive recovery.  Timing charges both writes (the
    drives operate in parallel in the paper, but the simulation is
    single-threaded, so we charge the slower — identical — of the two
    once and track the second on the mirror's own stats only).
    """

    def __init__(self, primary: SimulatedDisk, mirror: SimulatedDisk):
        if primary is mirror:
            raise ValueError("a duplexed pair needs two distinct disks")
        self.primary = primary
        self.mirror = mirror
        #: Reads served from the mirror after the primary copy was bad.
        self.failovers = 0

    def write_page(self, block_id: int, data: bytes, *, sibling: bool = False) -> None:
        framed = seal_frame(data)
        self.primary.write_page(block_id, framed, sibling=sibling)
        self.mirror.mirror_store(block_id, framed)

    def read_page(self, block_id: int, *, sibling: bool = False) -> bytes:
        try:
            blob = self.primary.read_page(block_id, sibling=sibling)
            return open_frame(blob, context=f"{self.primary.name} block {block_id}")
        except (TornWriteError, ChecksumError, KeyError) as primary_error:
            try:
                blob = self.mirror.read_page(block_id, sibling=sibling)
                payload = open_frame(
                    blob, context=f"{self.mirror.name} block {block_id}"
                )
            except (TornWriteError, ChecksumError, KeyError) as mirror_error:
                if isinstance(primary_error, KeyError) and isinstance(
                    mirror_error, KeyError
                ):
                    # Never written anywhere: keep the "no such block" shape.
                    raise KeyError(
                        f"duplexed pair has no block {block_id}"
                    ) from mirror_error
                raise MediaFailure(
                    f"both copies of block {block_id} are unreadable "
                    f"(primary: {primary_error}; mirror: {mirror_error})"
                ) from mirror_error
            self.failovers += 1
            return payload

    def contains(self, block_id: int) -> bool:
        return self.primary.contains(block_id) or self.mirror.contains(block_id)

    def free(self, block_id: int) -> None:
        self.primary.free(block_id)
        self.mirror.free(block_id)

    def block_ids(self) -> list[int]:
        return sorted(set(self.primary.block_ids()) | set(self.mirror.block_ids()))
