"""Crash-point registry and chaos harness.

The paper's claim is that recovery is *exact* no matter when the system
dies — mid-commit, in any of the seven checkpoint steps (section 2.4),
mid-flush, or even mid-restart.  This module makes that claim mechanically
checkable:

* Instrumented modules call :func:`register_crash_point` at import time
  and :func:`crash_point` at each interesting transition.  With no monkey
  active a hook is one global read and a ``None`` check, so the hooks
  stay on the hot path permanently (``benchmarks/bench_chaos_overhead.py``
  enforces the budget).
* :class:`ChaosMonkey` arms exactly one named point; the first time
  execution passes it, a :class:`~repro.sim.faults.SimulatedCrash` is
  raised and the monkey latches so recovery can run through the very same
  code path without re-firing.
* :class:`ChaosHarness` enumerates every registered point and, for each
  one and each recovery mode, replays a workload, crashes at the point,
  restarts (retrying when the crash lands *inside* restart), and checks
  the recovered state against the :class:`~repro.recovery.oracle.RecoveryVerifier`
  digest.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.common.errors import RecoveryError
from repro.sim.faults import SimulatedCrash

#: name -> human description of every crash point threaded into the system.
_REGISTRY: dict[str, str] = {}

#: The monkey currently observing crash points (None = all hooks free).
_active: "ChaosMonkey | None" = None

#: Passive observer of crash-point passages (the --lock-audit recorder
#: uses this to flag latches held across crash boundaries).  Unlike the
#: monkey it never raises; like the monkey it costs one global read and a
#: ``None`` check when unset.
_observer: "Callable[[str], None] | None" = None


def register_crash_point(name: str, description: str) -> str:
    """Declare a crash point (idempotent; called at module import)."""
    existing = _REGISTRY.get(name)
    if existing is not None and existing != description:
        raise ValueError(f"crash point {name!r} registered twice with different text")
    _REGISTRY[name] = description
    return name


def registered_crash_points() -> dict[str, str]:
    """Every known crash point, name -> description."""
    return dict(_REGISTRY)


def crash_point(name: str) -> None:
    """Hook threaded through hot transitions.  Near-free when disabled."""
    observer = _observer
    if observer is not None:
        observer(name)
    monkey = _active
    if monkey is not None:
        monkey.visit(name)


def set_crash_point_observer(observer: "Callable[[str], None] | None") -> None:
    """Install (or, with None, remove) the passive crash-point observer."""
    global _observer
    _observer = observer


def activate(monkey: "ChaosMonkey") -> None:
    global _active
    if _active is not None:
        raise RuntimeError("another ChaosMonkey is already active")
    _active = monkey


def deactivate() -> None:
    global _active
    _active = None


@contextlib.contextmanager
def chaos(monkey: "ChaosMonkey") -> Iterator["ChaosMonkey"]:
    """``with chaos(monkey):`` — scope the active monkey."""
    activate(monkey)
    try:
        yield monkey
    finally:
        deactivate()


class ChaosMonkey:
    """Crashes the simulation the first time an armed point is reached."""

    def __init__(self):
        self._armed: str | None = None
        self._skip = 0
        #: Name of the point that fired, or None.
        self.fired_at: str | None = None
        #: Visit counters for every point passed while active.
        self.hits: dict[str, int] = {}

    @property
    def fired(self) -> bool:
        return self.fired_at is not None

    def arm(self, name: str, *, skip: int = 0) -> None:
        """Crash at the ``skip``-th subsequent passage of ``name``."""
        if name not in _REGISTRY:
            raise ValueError(f"unknown crash point {name!r}")
        if skip < 0:
            raise ValueError("skip cannot be negative")
        self._armed = name
        self._skip = skip
        self.fired_at = None

    def disarm(self) -> None:
        self._armed = None

    def visit(self, name: str) -> None:
        self.hits[name] = self.hits.get(name, 0) + 1
        if name != self._armed:
            return
        if self._skip > 0:
            self._skip -= 1
            return
        # Latch before raising: recovery re-executes the same code paths
        # and must be able to pass this point without crashing again.
        self._armed = None
        self.fired_at = name
        raise SimulatedCrash(f"chaos: crash point {name!r} reached")


# ---------------------------------------------------------------------------
# The sweep harness
# ---------------------------------------------------------------------------


@dataclass
class CrashPointRun:
    """Outcome of one crash-at-point replay."""

    point: str
    mode: str
    #: Did the armed point actually fire during this replay?
    fired: bool
    #: Crashes that landed inside restart/recovery (crash-during-recovery).
    nested_crashes: int
    #: Stable commit count at verification time.
    commits: int
    #: Oracle digest matched the last committed state.
    verified: bool
    #: Points passed during the replay (diagnostics).
    hits: dict[str, int] = field(default_factory=dict)


class ChaosHarness:
    """Replays a workload crashing at every registered point.

    ``scenario_factory`` builds a fresh scenario and returns
    ``(db, run_workload)`` — a loaded :class:`~repro.db.database.Database`
    plus a zero-argument callable that runs the workload.  The factory is
    invoked once per (point, mode) pair so replays are independent.
    """

    #: A crash during restart is retried; the monkey's latch guarantees
    #: the second attempt passes, so two attempts suffice (the bound is
    #: defensive).
    MAX_RESTART_ATTEMPTS = 4

    def __init__(
        self,
        scenario_factory: Callable[[], tuple[object, Callable[[], None]]],
    ):
        self._factory = scenario_factory

    def run_point(self, point: str, mode: str = "on-demand") -> CrashPointRun:
        """Crash one replay at ``point``, restart in ``mode``, verify."""
        from repro.db.database import RecoveryMode
        from repro.recovery.oracle import RecoveryVerifier

        recovery_mode = (
            RecoveryMode.EAGER if mode == "eager" else RecoveryMode.ON_DEMAND
        )
        db, run_workload = self._factory()
        verifier = RecoveryVerifier(db)
        monkey = ChaosMonkey()
        monkey.arm(point)
        nested = 0
        with chaos(monkey):
            try:
                run_workload()
            except SimulatedCrash:
                pass
            # Crash unconditionally: points on the restart path only fire
            # during the recovery that follows.
            if not db.crashed:
                db.crash()
            for _ in range(self.MAX_RESTART_ATTEMPTS):
                try:
                    if db.crashed:
                        db.restart(recovery_mode)
                    if db.restart_coordinator is not None:
                        db.restart_coordinator.recover_everything()
                    break
                except SimulatedCrash:
                    nested += 1
                    db.crash()
            else:  # pragma: no cover - latch guarantees termination
                raise RecoveryError(
                    f"crash point {point!r}: restart did not converge in "
                    f"{self.MAX_RESTART_ATTEMPTS} attempts"
                )
        verifier.detach()
        verifier.verify()
        return CrashPointRun(
            point=point,
            mode=mode,
            fired=monkey.fired,
            nested_crashes=nested,
            commits=db.slb.commits,
            verified=True,
            hits=dict(monkey.hits),
        )

    def sweep(
        self,
        modes: tuple[str, ...] = ("on-demand", "eager"),
        points: list[str] | None = None,
    ) -> list[CrashPointRun]:
        """Run every (point, mode) combination; verification failures
        raise, so a returned list means the whole sweep passed."""
        results = []
        for point in points if points is not None else sorted(_REGISTRY):
            for mode in modes:
                results.append(self.run_point(point, mode))
        return results
