"""Crash/fault-point registries and the chaos engines.

The paper's claim is that recovery is *exact* no matter when the system
dies — mid-commit, in any of the seven checkpoint steps (section 2.4),
mid-flush, or even mid-restart.  This module makes that claim mechanically
checkable:

* Instrumented modules call :func:`register_crash_point` at import time
  and :func:`crash_point` at each interesting transition; the duplex I/O
  layers additionally declare :func:`register_fault_point` sites where a
  *transient* device fault can be injected into their retry loops.  With
  no injector active a hook is one global read and a ``None`` check, so
  the hooks stay on the hot path permanently
  (``benchmarks/bench_chaos_overhead.py`` enforces the budget).
* :class:`ChaosMonkey` arms exactly one named point; the first time
  execution passes it, a :class:`~repro.sim.faults.SimulatedCrash` is
  raised and the monkey latches so recovery can run through the very same
  code path without re-firing.
* :class:`ChaosEngine` generalises the monkey into a seeded, multi-action
  :class:`ChaosPlan`: any registered point may crash, inject host-time
  latency (so threaded-engine workers genuinely reorder), or raise a
  :class:`~repro.sim.faults.TransientIOError` — with per-point
  probability, nth-visit, and thread-name filters, all driven by one
  seeded RNG so any failure reproduces from its printed seed.
* :class:`ChaosHarness` enumerates every registered point and, for each
  one and each recovery mode, replays a workload, crashes at the point,
  restarts (retrying when the crash lands *inside* restart), and checks
  the recovered state against the :class:`~repro.recovery.oracle.RecoveryVerifier`
  digest.  :mod:`repro.sim.torture` builds the randomized counterpart on
  top of :class:`ChaosEngine`.

Thread safety: :func:`activate` / :func:`deactivate` /
:func:`set_crash_point_observer` serialise on a module lock and publish
by a single attribute store, while the hooks read the global exactly
once — atomic publication, so worker threads mid-``crash_point`` either
see the old injector or the new one, never a torn state.
"""

from __future__ import annotations

import contextlib
import random
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.common.errors import RecoveryError
from repro.sim.clock import host_pause
from repro.sim.faults import SimulatedCrash, TransientIOError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database

#: name -> human description of every crash point threaded into the system.
_REGISTRY: dict[str, str] = {}

#: name -> description of every transient-fault injection site (the
#: retry-wrapped duplex I/O operations).
_FAULT_REGISTRY: dict[str, str] = {}

#: The injector currently observing crash/fault points (None = all hooks
#: free).  Anything with ``visit(name)`` / ``visit_fault(name)`` methods
#: qualifies: :class:`ChaosMonkey` or :class:`ChaosEngine`.
_active: "ChaosMonkey | ChaosEngine | None" = None

#: Passive observer of crash-point passages (the --lock-audit recorder
#: uses this to flag latches held across crash boundaries).  Unlike the
#: injector it never raises; like the injector it costs one global read
#: and a ``None`` check when unset.
_observer: "Callable[[str], None] | None" = None

#: Serialises every mutation of the two globals above (and the
#: registries).  The hooks themselves stay lock-free: they read the
#: global once, which CPython guarantees is an atomic load of whatever
#: was last published.
_mutation_lock = threading.Lock()


def register_crash_point(name: str, description: str) -> str:
    """Declare a crash point (idempotent; called at module import)."""
    with _mutation_lock:
        existing = _REGISTRY.get(name)
        if existing is not None and existing != description:
            raise ValueError(
                f"crash point {name!r} registered twice with different text"
            )
        _REGISTRY[name] = description
    return name


def register_fault_point(name: str, description: str) -> str:
    """Declare a transient-fault injection site (idempotent)."""
    with _mutation_lock:
        existing = _FAULT_REGISTRY.get(name)
        if existing is not None and existing != description:
            raise ValueError(
                f"fault point {name!r} registered twice with different text"
            )
        _FAULT_REGISTRY[name] = description
    return name


def registered_crash_points() -> dict[str, str]:
    """Every known crash point, name -> description."""
    return dict(_REGISTRY)


def registered_fault_points() -> dict[str, str]:
    """Every known transient-fault site, name -> description."""
    return dict(_FAULT_REGISTRY)


def crash_point(name: str) -> None:
    """Hook threaded through hot transitions.  Near-free when disabled."""
    observer = _observer
    if observer is not None:
        observer(name)
    injector = _active
    if injector is not None:
        injector.visit(name)


def fault_point(name: str) -> None:
    """Hook inside a retry-wrapped duplex I/O operation.

    An active :class:`ChaosEngine` may raise a
    :class:`~repro.sim.faults.TransientIOError` here, which the
    surrounding retry loop absorbs (or escalates past its budget).
    Near-free when disabled, exactly like :func:`crash_point`.
    """
    injector = _active
    if injector is not None:
        injector.visit_fault(name)


def set_crash_point_observer(observer: "Callable[[str], None] | None") -> None:
    """Install (or, with None, remove) the passive crash-point observer.

    Published atomically under the module lock; hooks already past their
    global read finish against the previous observer.
    """
    global _observer
    with _mutation_lock:
        _observer = observer


def activate(injector: "ChaosMonkey | ChaosEngine") -> None:
    global _active
    with _mutation_lock:
        if _active is not None:
            raise RuntimeError("another chaos injector is already active")
        _active = injector


def deactivate() -> None:
    global _active
    with _mutation_lock:
        _active = None


@contextlib.contextmanager
def chaos(injector: "ChaosMonkey | ChaosEngine") -> Iterator["ChaosMonkey | ChaosEngine"]:
    """``with chaos(injector):`` — scope the active monkey or engine."""
    activate(injector)
    try:
        yield injector
    finally:
        deactivate()


class ChaosMonkey:
    """Crashes the simulation the first time an armed point is reached."""

    def __init__(self):
        self._armed: str | None = None
        self._skip = 0
        #: Name of the point that fired, or None.
        self.fired_at: str | None = None
        #: Visit counters for every point passed while active.
        self.hits: dict[str, int] = {}

    @property
    def fired(self) -> bool:
        return self.fired_at is not None

    def arm(self, name: str, *, skip: int = 0) -> None:
        """Crash at the ``skip``-th subsequent passage of ``name``."""
        if name not in _REGISTRY:
            raise ValueError(f"unknown crash point {name!r}")
        if skip < 0:
            raise ValueError("skip cannot be negative")
        self._armed = name
        self._skip = skip
        self.fired_at = None

    def disarm(self) -> None:
        self._armed = None

    def visit(self, name: str) -> None:
        self.hits[name] = self.hits.get(name, 0) + 1
        if name != self._armed:
            return
        if self._skip > 0:
            self._skip -= 1
            return
        # Latch before raising: recovery re-executes the same code paths
        # and must be able to pass this point without crashing again.
        self._armed = None
        self.fired_at = name
        raise SimulatedCrash(f"chaos: crash point {name!r} reached")

    def visit_fault(self, name: str) -> None:
        """Fault sites only count under a monkey; injection needs a plan."""
        self.hits[name] = self.hits.get(name, 0) + 1


# ---------------------------------------------------------------------------
# Seeded multi-action plans
# ---------------------------------------------------------------------------

#: Actions a :class:`ChaosRule` may take when it fires.
CRASH, LATENCY, FAULT = "crash", "latency", "fault"
ACTIONS = (CRASH, LATENCY, FAULT)


@dataclass(frozen=True)
class ChaosRule:
    """One injection rule of a :class:`ChaosPlan`.

    ``point`` names a crash point (crash/latency actions) or a fault
    point (fault/latency actions).  A rule becomes eligible after the
    point's first ``after_visits`` passages, then fires with
    ``probability`` per passage — restricted to threads whose name
    starts with ``thread_prefix`` when one is given — until it has fired
    ``max_fires`` times (``None`` = unlimited, the latency default).
    """

    point: str
    action: str
    probability: float = 1.0
    after_visits: int = 0
    thread_prefix: str | None = None
    max_fires: int | None = 1
    #: Host-seconds jitter range for LATENCY fires.
    latency_range: tuple[float, float] = (0.0002, 0.002)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown chaos action {self.action!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.after_visits < 0:
            raise ValueError("after_visits cannot be negative")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be at least 1 (or None)")
        lo, hi = self.latency_range
        if lo < 0.0 or hi < lo:
            raise ValueError("latency_range must be 0 <= lo <= hi")

    def describe(self) -> str:
        parts = [f"{self.action}@{self.point}"]
        if self.probability < 1.0:
            parts.append(f"p={self.probability:g}")
        if self.after_visits:
            parts.append(f"after={self.after_visits}")
        if self.thread_prefix:
            parts.append(f"thread={self.thread_prefix}*")
        if self.max_fires is not None:
            parts.append(f"max={self.max_fires}")
        return "[" + " ".join(parts) + "]"


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded set of injection rules.

    The seed drives *every* probabilistic decision (fire rolls, latency
    jitter, device-bridge jitter), so a failing run reproduces from the
    plan's printed seed alone.
    """

    seed: int
    rules: tuple[ChaosRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def describe(self) -> str:
        body = " ".join(rule.describe() for rule in self.rules) or "(no rules)"
        return f"ChaosPlan(seed={self.seed}) {body}"

    # -- convenience constructors ------------------------------------------

    @classmethod
    def crash_at(cls, seed: int, point: str, *, after_visits: int = 0) -> "ChaosPlan":
        """The single-shot monkey as a plan (deterministic crash)."""
        return cls(seed, (ChaosRule(point, CRASH, after_visits=after_visits),))


@dataclass(frozen=True)
class ChaosFire:
    """One rule firing, recorded for diagnostics/reproduction."""

    point: str
    action: str
    visit: int
    thread: str


class _RuleState:
    __slots__ = ("rule", "fires", "exhausted")

    def __init__(self, rule: ChaosRule):
        self.rule = rule
        self.fires = 0
        self.exhausted = False


class ChaosEngine:
    """Evaluates a :class:`ChaosPlan` at every hook passage.

    Thread-safe: visit counters, fire bookkeeping, and the seeded RNG
    mutate under one internal lock; latency sleeps happen *outside* it so
    a sleeping worker never blocks other threads' hook passages.  Crash
    rules latch after ``max_fires`` exactly like the monkey, so the
    recovery that follows can pass the same point without re-firing.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._mutex = threading.Lock()
        self._states: dict[str, list[_RuleState]] = {}
        self._visits: dict[str, int] = {}
        #: Every fire, in order (diagnostics; printed on torture failures).
        self.fired: list[ChaosFire] = []
        for rule in plan.rules:
            known = rule.point in _REGISTRY or rule.point in _FAULT_REGISTRY
            if not known:
                raise ValueError(f"unknown chaos point {rule.point!r}")
            if rule.action == FAULT and rule.point not in _FAULT_REGISTRY:
                raise ValueError(
                    f"fault rules need a fault point; {rule.point!r} is a "
                    f"crash point (no retry loop surrounds it)"
                )
            self._states.setdefault(rule.point, []).append(_RuleState(rule))

    # -- inspection ---------------------------------------------------------

    @property
    def crashes_fired(self) -> int:
        with self._mutex:
            return sum(1 for f in self.fired if f.action == CRASH)

    @property
    def faults_fired(self) -> int:
        with self._mutex:
            return sum(1 for f in self.fired if f.action == FAULT)

    @property
    def latency_fired(self) -> int:
        with self._mutex:
            return sum(1 for f in self.fired if f.action == LATENCY)

    def fires(self) -> list[ChaosFire]:
        with self._mutex:
            return list(self.fired)

    # -- hook dispatch ------------------------------------------------------

    def visit(self, name: str) -> None:
        self._dispatch(name)

    def visit_fault(self, name: str) -> None:
        self._dispatch(name)

    def _dispatch(self, name: str) -> None:
        states = self._states.get(name)
        if states is None:
            return
        thread_name = threading.current_thread().name
        raise_exc: BaseException | None = None
        pause = 0.0
        with self._mutex:
            visit = self._visits.get(name, 0) + 1
            self._visits[name] = visit
            for state in states:
                rule = state.rule
                if state.exhausted:
                    continue
                if rule.thread_prefix is not None and not thread_name.startswith(
                    rule.thread_prefix
                ):
                    continue
                if visit <= rule.after_visits:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                state.fires += 1
                if rule.max_fires is not None and state.fires >= rule.max_fires:
                    # Latch before raising, like the monkey: recovery must
                    # be able to pass this point again.
                    state.exhausted = True
                self.fired.append(ChaosFire(name, rule.action, visit, thread_name))
                if rule.action == CRASH:
                    raise_exc = SimulatedCrash(
                        f"chaos[seed={self.plan.seed}]: crash at {name!r} "
                        f"(visit {visit}, thread {thread_name!r})"
                    )
                    break
                if rule.action == FAULT:
                    raise_exc = TransientIOError(
                        f"chaos[seed={self.plan.seed}]: transient fault at "
                        f"{name!r} (visit {visit}, thread {thread_name!r})"
                    )
                    break
                lo, hi = rule.latency_range
                pause += lo + (hi - lo) * self._rng.random()
        if pause > 0.0:
            host_pause(pause)
        if raise_exc is not None:
            raise raise_exc

    # -- device-bridge latency ---------------------------------------------

    def latency_injector(
        self, jitter: tuple[float, float] = (0.0, 0.001)
    ) -> Callable[[float], float]:
        """A perturbation callable for the ``latency_injector`` slots on
        :class:`~repro.sim.disk.SimulatedDisk` / :class:`~repro.sim.cpu.CpuMeter`.

        Receives the host pause the ``realtime_scale`` bridge computed and
        returns it plus seeded jitter, so device waits in worker threads
        stretch by random-but-reproducible amounts.
        """
        lo, hi = jitter
        if lo < 0.0 or hi < lo:
            raise ValueError("jitter must be 0 <= lo <= hi")

        def perturb(pause: float) -> float:
            with self._mutex:
                extra = lo + (hi - lo) * self._rng.random()
            return pause + extra

        return perturb


def install_latency(
    db: "Database",
    engine: ChaosEngine,
    *,
    disk_scale: float = 0.0,
    cpu_scale: float = 0.0,
    jitter: tuple[float, float] = (0.0, 0.001),
) -> None:
    """Wire seeded latency jitter into a database's realtime bridges.

    Sets ``realtime_scale`` and a seeded perturbation on both log
    spindles, the checkpoint disk, and both CPU meters, so simulated
    device/instruction time costs jittered *host* time and threaded
    workers genuinely reorder.  Disk and CPU scales are separate because
    their simulated magnitudes differ by orders of magnitude (one disk
    I/O is ~16 simulated ms; one instruction batch is ~100 simulated µs).
    Undo with :func:`remove_latency`.
    """
    perturb = engine.latency_injector(jitter)
    for device in _disk_bridges(db):
        device.realtime_scale = disk_scale
        device.latency_injector = perturb
    for device in _cpu_bridges(db):
        device.realtime_scale = cpu_scale
        device.latency_injector = perturb


def remove_latency(db: "Database") -> None:
    """Return every realtime bridge to the purely simulated default."""
    for device in _disk_bridges(db) + _cpu_bridges(db):
        device.realtime_scale = 0.0
        device.latency_injector = None


def _disk_bridges(db: "Database") -> list:
    return [
        db.log_disk.disks.primary,
        db.log_disk.disks.mirror,
        db.checkpoint_disk.disk,
    ]


def _cpu_bridges(db: "Database") -> list:
    return [db.main_cpu, db.recovery_cpu]


# ---------------------------------------------------------------------------
# The sweep harness
# ---------------------------------------------------------------------------


@dataclass
class CrashPointRun:
    """Outcome of one crash-at-point replay."""

    point: str
    mode: str
    #: Did the armed point actually fire during this replay?
    fired: bool
    #: Crashes that landed inside restart/recovery (crash-during-recovery).
    nested_crashes: int
    #: Stable commit count at verification time.
    commits: int
    #: Oracle digest matched the last committed state.
    verified: bool
    #: Points passed during the replay (diagnostics).
    hits: dict[str, int] = field(default_factory=dict)


class ChaosHarness:
    """Replays a workload crashing at every registered point.

    ``scenario_factory`` builds a fresh scenario and returns
    ``(db, run_workload)`` — a loaded :class:`~repro.db.database.Database`
    plus a zero-argument callable that runs the workload.  The factory is
    invoked once per (point, mode) pair so replays are independent.
    """

    #: A crash during restart is retried; the monkey's latch guarantees
    #: the second attempt passes, so two attempts suffice (the bound is
    #: defensive).
    MAX_RESTART_ATTEMPTS = 4

    def __init__(
        self,
        scenario_factory: Callable[[], tuple[object, Callable[[], None]]],
    ):
        self._factory = scenario_factory

    def run_point(self, point: str, mode: str = "on-demand") -> CrashPointRun:
        """Crash one replay at ``point``, restart in ``mode``, verify."""
        from repro.db.database import RecoveryMode
        from repro.recovery.oracle import RecoveryVerifier

        recovery_mode = (
            RecoveryMode.EAGER if mode == "eager" else RecoveryMode.ON_DEMAND
        )
        db, run_workload = self._factory()
        verifier = RecoveryVerifier(db)
        monkey = ChaosMonkey()
        monkey.arm(point)
        nested = 0
        with chaos(monkey):
            try:
                run_workload()
            except SimulatedCrash:
                pass
            # Crash unconditionally: points on the restart path only fire
            # during the recovery that follows.
            if not db.crashed:
                db.crash()
            for _ in range(self.MAX_RESTART_ATTEMPTS):
                try:
                    if db.crashed:
                        db.restart(recovery_mode)
                    if db.restart_coordinator is not None:
                        db.restart_coordinator.recover_everything()
                    break
                except SimulatedCrash:
                    nested += 1
                    db.crash()
            else:  # pragma: no cover - latch guarantees termination
                raise RecoveryError(
                    f"crash point {point!r}: restart did not converge in "
                    f"{self.MAX_RESTART_ATTEMPTS} attempts"
                )
        verifier.detach()
        verifier.verify()
        return CrashPointRun(
            point=point,
            mode=mode,
            fired=monkey.fired,
            nested_crashes=nested,
            commits=db.slb.commits,
            verified=True,
            hits=dict(monkey.hits),
        )

    def sweep(
        self,
        modes: tuple[str, ...] = ("on-demand", "eager"),
        points: list[str] | None = None,
    ) -> list[CrashPointRun]:
        """Run every (point, mode) combination; verification failures
        raise, so a returned list means the whole sweep passed."""
        results = []
        for point in points if points is not None else sorted(_REGISTRY):
            for mode in modes:
                results.append(self.run_point(point, mode))
        return results
