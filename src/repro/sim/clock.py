"""Virtual time.

Every latency in the reproduction — instruction execution, stable-memory
access, disk transfers — is *simulated* time on this clock.  Nothing in the
library reads the wall clock, which keeps runs deterministic and lets the
benchmarks report 1987-scale seconds regardless of host speed.

This module is also the one sanctioned bridge between simulated time and
*host* time (lint rule RC03 allows wall-clock imports here and nowhere
else): :func:`host_pause` maps simulated device seconds onto real
``time.sleep`` so the threaded engine's concurrency is measurable.  The
bridge is inert unless a component opts in with a positive scale, so the
deterministic cooperative schedule never touches it.
"""

from __future__ import annotations

import threading
import time as _host_time


def host_pause(seconds: float) -> None:
    """Sleep ``seconds`` of *host* wall time (non-positive is a no-op).

    Used by :class:`~repro.sim.disk.SimulatedDisk` when a realtime scale
    is configured, so overlapped device waits in the threaded engine cost
    overlapped host time — the property ``bench_parallel_recovery``
    measures.  Never called on the purely simulated path.
    """
    if seconds > 0.0:
        _host_time.sleep(seconds)


def host_now() -> float:
    """Monotonic *host* seconds (``time.perf_counter``).

    The concurrent transaction scheduler uses this for retry-backoff
    deadlines and per-worker utilisation accounting — quantities that are
    about the host threads themselves, not the simulated machine.  Like
    :func:`host_pause` this lives here because RC03 sanctions wall-clock
    imports only in this module.
    """
    return _host_time.perf_counter()


class VirtualClock:
    """A monotonically advancing simulated clock, in seconds.

    Advances are atomic: processors, disks, and the threaded engine's
    recovery/restore threads share one clock, and each advance is a
    read-modify-write that must not be torn.  Total elapsed time is the
    sum of all advances and therefore independent of thread interleaving.
    """

    def __init__(self, start: float = 0.0):
        if start < 0.0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)
        self._lock = threading.Lock()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        Negative advances are rejected: simulated time never runs backwards.
        """
        if seconds < 0.0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to the absolute instant ``when``.

        A ``when`` in the past is a no-op — this models waiting for an event
        that already happened.
        """
        with self._lock:
            if when > self._now:
                self._now = when
            return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"
