"""Virtual time.

Every latency in the reproduction — instruction execution, stable-memory
access, disk transfers — is *simulated* time on this clock.  Nothing in the
library reads the wall clock, which keeps runs deterministic and lets the
benchmarks report 1987-scale seconds regardless of host speed.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0):
        if start < 0.0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        Negative advances are rejected: simulated time never runs backwards.
        """
        if seconds < 0.0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to the absolute instant ``when``.

        A ``when`` in the past is a no-op — this models waiting for an event
        that already happened.
        """
        if when > self._now:
            self._now = when
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"
