"""Exception hierarchy for the MM-DBMS recovery reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A :class:`~repro.common.config.SystemConfig` value is invalid."""


# --------------------------------------------------------------------------
# Storage layer
# --------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PartitionFullError(StorageError):
    """A partition has no room for the requested entity or string."""


class NotResidentError(StorageError):
    """A partition (or relation) is not memory-resident.

    Raised during post-crash operation when a transaction references data
    that has not yet been recovered (paper section 2.5, access method 2).
    The caller is expected to schedule a recovery transaction for the
    partitions named in :attr:`partitions` and retry.
    """

    def __init__(self, message: str, partitions: tuple = ()):  # type: ignore[type-arg]
        super().__init__(message)
        self.partitions = tuple(partitions)


class StableMemoryFullError(StorageError):
    """The stable log buffer / stable log tail ran out of blocks."""


# --------------------------------------------------------------------------
# Concurrency control
# --------------------------------------------------------------------------


class ConcurrencyError(ReproError):
    """Base class for lock-manager failures."""


class DeadlockError(ConcurrencyError):
    """A lock request would create a waits-for cycle; the requester must abort."""

    def __init__(self, message: str, victim: int | None = None):
        super().__init__(message)
        self.victim = victim


class LockNotHeldError(ConcurrencyError):
    """An unlock (or lock upgrade) was attempted on a lock not held."""


# --------------------------------------------------------------------------
# Transactions
# --------------------------------------------------------------------------


class TransactionAborted(ReproError):
    """The transaction was rolled back and must not issue further operations."""

    def __init__(self, message: str, txn_id: int | None = None):
        super().__init__(message)
        self.txn_id = txn_id


class TransactionStateError(ReproError):
    """An operation was issued in an illegal transaction state.

    For example committing twice, or writing after commit.
    """


# --------------------------------------------------------------------------
# Logging / checkpoint / recovery
# --------------------------------------------------------------------------


class LogError(ReproError):
    """Base class for log-component failures (SLB, SLT, log disk)."""


class LogWindowOverrunError(LogError):
    """Active log information fell off the log window before its partition
    was checkpointed.

    This indicates the age-trigger grace period was mis-configured; the
    paper guarantees this never happens in a correctly sized system, and we
    surface it loudly instead of silently losing recovery information.
    """


class ChecksumError(LogError):
    """A stable block's CRC32 did not match its contents.

    Detected corruption (bit rot, stale version, zero-fill, partial
    write) is surfaced as this error so readers can fail over to the
    mirror copy instead of decoding garbage.
    """


class MediaFailure(ReproError):
    """Both copies of a duplexed block (or the only copy of a checkpoint
    image) are unreadable.

    This is beyond what duplexing protects against; the caller must
    escalate to archive (media) recovery — paper section 2.6.
    """


class CheckpointError(ReproError):
    """A checkpoint transaction failed or the checkpoint protocol was violated."""


class RecoveryError(ReproError):
    """Post-crash recovery could not restore a partition or the catalogs."""


class CatalogError(ReproError):
    """A catalog lookup failed or a catalog invariant was violated."""


class IndexStructureError(ReproError):
    """A T-Tree / linear-hash structural invariant was violated."""
