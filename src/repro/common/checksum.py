"""CRC32 framing for stable blocks.

Every page that reaches a simulated disk — log pages on the duplexed
pair, partition images on the checkpoint disk — is wrapped in a small
frame carrying a CRC32 of the payload and the payload length.  Readers
verify the frame before handing bytes to any decoder, which is how real
systems detect bit rot, stale sector versions, zeroed blocks, and torn
writes that the drive itself did not report.

The frame is deliberately tiny (8 bytes) so the <5% overhead budget of
``benchmarks/bench_chaos_overhead.py`` holds.
"""

from __future__ import annotations

import struct
import zlib

from repro.common.errors import ChecksumError

_FRAME = struct.Struct("<II")  # crc32, payload length
FRAME_BYTES = _FRAME.size


def seal_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its CRC32 and length."""
    return _FRAME.pack(zlib.crc32(payload) & 0xFFFFFFFF, len(payload)) + payload


def open_frame(blob: bytes, *, context: str = "block") -> bytes:
    """Verify a framed block and return the payload.

    Raises :class:`ChecksumError` on truncation, length mismatch, or a
    CRC mismatch — all corruption kinds collapse to the same observable.
    """
    if len(blob) < FRAME_BYTES:
        raise ChecksumError(f"{context}: {len(blob)}-byte block is too short to frame")
    crc, length = _FRAME.unpack_from(blob, 0)
    payload = blob[FRAME_BYTES:]
    if len(payload) != length:
        raise ChecksumError(
            f"{context}: payload is {len(payload)} bytes, frame says {length}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ChecksumError(f"{context}: CRC32 mismatch")
    return payload
