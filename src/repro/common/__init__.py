"""Shared foundation for the MM-DBMS recovery reproduction.

This package holds the vocabulary types used across every subsystem:
exceptions, addresses (segments / partitions / entities), log sequence
numbers, and the configuration dataclasses that size the system.
"""

from repro.common.errors import (
    CatalogError,
    CheckpointError,
    ConfigurationError,
    DeadlockError,
    IndexStructureError,
    LockNotHeldError,
    LogError,
    NotResidentError,
    PartitionFullError,
    RecoveryError,
    ReproError,
    StableMemoryFullError,
    StorageError,
    TransactionAborted,
    TransactionStateError,
)
from repro.common.types import (
    NULL_LSN,
    EntityAddress,
    PartitionAddress,
    SegmentKind,
    TransactionId,
)
from repro.common.config import (
    AnalysisParameters,
    DiskParameters,
    SystemConfig,
)
from repro.common.units import GIGABYTE, KILOBYTE, MEGABYTE

__all__ = [
    "AnalysisParameters",
    "CatalogError",
    "CheckpointError",
    "ConfigurationError",
    "DeadlockError",
    "DiskParameters",
    "EntityAddress",
    "GIGABYTE",
    "IndexStructureError",
    "KILOBYTE",
    "LockNotHeldError",
    "LogError",
    "MEGABYTE",
    "NULL_LSN",
    "NotResidentError",
    "PartitionAddress",
    "PartitionFullError",
    "RecoveryError",
    "ReproError",
    "SegmentKind",
    "StableMemoryFullError",
    "StorageError",
    "SystemConfig",
    "TransactionAborted",
    "TransactionStateError",
    "TransactionId",
]
