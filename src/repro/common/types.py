"""Core vocabulary types: addresses, LSNs, transaction ids.

The paper's memory organisation (section 2) names entities by a triple
(Segment Number, Partition Number, Partition Offset).  We model those three
levels with :class:`PartitionAddress` and :class:`EntityAddress`.

Log sequence numbers are plain integers; ``NULL_LSN`` (``-1``) denotes
"no log page yet".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NewType

TransactionId = NewType("TransactionId", int)

#: Sentinel LSN meaning "no page has been written".
NULL_LSN = -1


class SegmentKind(enum.Enum):
    """What a logical segment stores.

    Every database object gets its own segment (paper section 2): relations,
    indexes, and the system catalogs themselves.
    """

    RELATION = "relation"
    INDEX = "index"
    CATALOG = "catalog"


@dataclass(frozen=True, slots=True, order=True)
class PartitionAddress:
    """Stable name of one partition: (segment number, partition number).

    The address is attached to every log page written for the partition and
    is checked during recovery (paper section 2.3.3, "Partition Address").
    """

    segment: int
    partition: int

    def __str__(self) -> str:
        return f"S{self.segment}.P{self.partition}"


@dataclass(frozen=True, slots=True, order=True)
class EntityAddress:
    """Memory address of a database entity: a tuple or an index component.

    Entities never cross partition boundaries, so (segment, partition,
    offset) uniquely names one entity for the life of the partition.
    """

    segment: int
    partition: int
    offset: int

    @property
    def partition_address(self) -> PartitionAddress:
        return PartitionAddress(self.segment, self.partition)

    def __str__(self) -> str:
        return f"S{self.segment}.P{self.partition}+{self.offset}"
