"""Configuration dataclasses sizing the simulated MM-DBMS.

Two kinds of knobs live here:

* :class:`SystemConfig` — functional sizes (partition size, log page size,
  checkpoint trigger threshold, ...) used by the running system.
* :class:`AnalysisParameters` / :class:`DiskParameters` — the cost-model
  constants of the paper's Table 2, shared by the analytic model
  (``repro.analysis``) and the instruction-accounting simulator
  (``repro.sim.cpu``).

Default values follow Table 2 of the paper: 24-byte log records, 8 KB log
pages, 48 KB partitions, a checkpoint threshold of 1000 updates, and a
1-MIPS recovery processor whose stable memory is four times slower than
regular memory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.units import KILOBYTE, MEGABYTE


@dataclass(frozen=True, slots=True)
class DiskParameters:
    """Timing model for one disk, loosely a 1987 two-head-per-surface drive.

    The paper's Table 2 lists disk rows that are unreadable in the scanned
    text; these values are reconstructed from the prose (two heads per
    surface hence low seeks, interleaved log sectors, track-rate partition
    transfers at double the page rate) and period-typical hardware.  The
    substitution is recorded in DESIGN.md.
    """

    #: Average seek time for a random access (seconds).
    avg_seek_s: float = 0.016
    #: Seek between neighbouring log pages of one partition (seconds).
    #: Log pages of a partition cluster inside the log window, so this is
    #: well below the average seek (paper section 3.1).
    sibling_seek_s: float = 0.008
    #: Average rotational latency (seconds); half a revolution at 3600 rpm.
    rotational_latency_s: float = 0.00833
    #: Sustained transfer rate for single-page I/O (bytes / second).
    page_transfer_rate: float = 2.5 * MEGABYTE
    #: Transfer rate for whole-track I/O — double the page rate (paper
    #: section 3.1: "the transfer rate for a track of data is double the
    #: transfer rate for individual pages").
    track_transfer_rate: float = 5.0 * MEGABYTE

    def page_read_time(self, nbytes: int, *, sibling: bool = False) -> float:
        """Seconds to read ``nbytes`` as an individually addressed page."""
        seek = self.sibling_seek_s if sibling else self.avg_seek_s
        return seek + self.rotational_latency_s + nbytes / self.page_transfer_rate

    def track_read_time(self, nbytes: int) -> float:
        """Seconds to read ``nbytes`` written as whole tracks."""
        return (
            self.avg_seek_s
            + self.rotational_latency_s
            + nbytes / self.track_transfer_rate
        )

    def page_write_time(self, nbytes: int, *, sibling: bool = False) -> float:
        """Seconds to write ``nbytes`` as an individually addressed page.

        Log-disk sectors are interleaved so consecutive page writes do not
        pay a full rotation (paper section 3.1); the ordinary page timing
        already reflects that.
        """
        return self.page_read_time(nbytes, sibling=sibling)

    def track_write_time(self, nbytes: int) -> float:
        """Seconds to write ``nbytes`` as whole tracks (checkpoint images)."""
        return self.track_read_time(nbytes)


@dataclass(frozen=True, slots=True)
class AnalysisParameters:
    """Instruction-count constants of the paper's Table 2.

    Units are noted per field.  The ``(Calculated)`` rows of Table 2 —
    ``I_record_sort``, ``I_page_write``, the logging rates and the
    checkpoint rate — are *derived* from these by
    :mod:`repro.analysis.logging_model`.
    """

    #: Read one log record and determine the index of its log bin
    #: (instructions / record).
    i_record_lookup: float = 20.0
    #: Fixed start-up cost of copying a string of bytes (instructions / copy).
    i_copy_fixed: float = 3.0
    #: Additional per-byte cost of copying a string of bytes
    #: (instructions / byte), before the stable-memory slowdown.
    i_copy_add: float = 0.125
    #: Cost of initiating a disk write of a full log-bin page
    #: (instructions / page write).
    i_write_init: float = 500.0
    #: Cost of allocating a new log-bin page and releasing the old one
    #: (instructions / page write).
    i_page_alloc: float = 100.0
    #: Cost of updating the log-bin page information (instructions / record).
    i_page_update: float = 10.0
    #: Cost of checking the existence of a log-bin page
    #: (instructions / log record).
    i_page_check: float = 10.0
    #: Cost of maintaining the LSN count and checking for possible
    #: checkpoints (instructions / page write).
    i_process_lsn: float = 40.0
    #: Cost of signalling the main CPU to start a checkpoint transaction
    #: (instructions / checkpoint).
    i_checkpoint: float = 40.0
    #: MIPS power of the recovery CPU (million instructions / second).
    p_recovery_mips: float = 1.0
    #: Stable reliable memory is this many times slower than regular memory
    #: (paper section 1: "two to four times slower"; section 3.1 uses four).
    #: Applied to the per-byte copy cost, which touches stable memory on
    #: both the read (SLB) and the write (SLT) side.
    stable_memory_slowdown: float = 4.0

    @property
    def instructions_per_second(self) -> float:
        return self.p_recovery_mips * 1_000_000.0


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Functional sizing of the simulated system.

    Defaults mirror Table 2 where the paper gives a value; the remaining
    sizes (stable memory capacity, log window, directory size) follow the
    prose of sections 2.3.3 and 3.3.
    """

    #: Size of one partition in bytes (Table 2: 48 KB).
    partition_size: int = 48 * KILOBYTE
    #: Size of one log page in bytes (Table 2: 8 KB).
    log_page_size: int = 8 * KILOBYTE
    #: Average log record size in bytes (Table 2: 24 B). Actual records
    #: vary; this enters sizing heuristics only.
    log_record_size: int = 24
    #: Number of log records a partition may accumulate before a checkpoint
    #: is triggered by update count (Table 2: 1000).
    update_count_threshold: int = 1000
    #: Log page directory size N: pointers kept per directory node
    #: (section 2.3.3 — chosen near the median page count of an active
    #: partition so recovery reads pages in write order).
    log_directory_size: int = 8
    #: Fixed SLB / UNDO block size in bytes (section 2.3.1: both spaces are
    #: managed as sets of fixed-size blocks handed to transactions).
    log_block_size: int = 1 * KILOBYTE
    #: Capacity of the Stable Log Buffer in bytes.
    slb_capacity: int = 2 * MEGABYTE
    #: Capacity of the Stable Log Tail in bytes (holds partition bins).
    slt_capacity: int = 8 * MEGABYTE
    #: Number of log pages in the log window (the reusable active portion
    #: of the log disk, section 2.3.3).
    log_window_pages: int = 4096
    #: Grace period, in log pages, between the age trigger firing and the
    #: page actually falling off the window (section 2.3.3).
    log_window_grace_pages: int = 64
    #: Number of partition-sized slots on the checkpoint disk's
    #: pseudo-circular queue (section 2.4).
    checkpoint_slots: int = 4096
    #: Decoded log pages kept in the log disk's bounded LRU cache, shared
    #: by restart reads, ownership peeks, and the media-recovery scan
    #: (0 disables caching).
    log_page_cache_pages: int = 128
    #: Retries allowed per duplexed I/O operation before a transient
    #: device fault escalates to a hard ``MediaFailure`` (0 = escalate on
    #: the first fault).  Shared by the log and checkpoint disks.
    io_retry_budget: int = 4
    #: Default per-transaction logging mode: ``"value"`` (after-images,
    #: the paper's scheme), ``"command"`` (one TxnCommand record per
    #: registered script, docs/LOGGING.md), or ``"adaptive"`` (value
    #: execution, converted to a command record at commit when the
    #: after-image bytes reach ``adaptive_log_threshold``).  Overridable
    #: per call on :meth:`Database.run_script`.  The ``REPRO_LOGGING_MODE``
    #: environment variable sets the default for configs that do not pass
    #: it explicitly (the CI logging-mode matrix axis, mirroring
    #: ``REPRO_ENGINE``).
    logging_mode: str = field(
        default_factory=lambda: os.environ.get("REPRO_LOGGING_MODE", "value")
    )
    #: Adaptive mode converts a declared transaction to command logging
    #: when its after-image chain reaches this many bytes; below it the
    #: value chain is cheaper than a command record plus barriers.
    adaptive_log_threshold: int = 256
    #: Run the background condenser (docs/CONDENSING.md): the recovery
    #: CPU, when idle, folds flushed log pages into shadow checkpoint
    #: images so restart replays only the short uncondensed suffix.  Off
    #: by default; the ``REPRO_CONDENSE`` environment variable turns it
    #: on for configs that do not pass the flag explicitly (a CI matrix
    #: axis, mirroring ``REPRO_LOGGING_MODE``).
    condense_enabled: bool = field(
        default_factory=lambda: os.environ.get("REPRO_CONDENSE", "") == "1"
    )
    #: Upper bound on log pages folded per condense slice — one slice is
    #: one unit of idle-time work, so this caps how long the recovery
    #: CPU stays busy before checking for real duties again.
    condense_pages_per_slice: int = 4
    #: A partition becomes a condense candidate once it has more than
    #: this many flushed-but-uncondensed log pages.  0 means "condense
    #: whenever anything is uncondensed".
    condense_lag_target_pages: int = 0
    #: Disk model used for the log disks.
    log_disk: DiskParameters = field(default_factory=DiskParameters)
    #: Disk model used for the checkpoint disks.
    checkpoint_disk: DiskParameters = field(default_factory=DiskParameters)
    #: Cost-model constants (Table 2).
    analysis: AnalysisParameters = field(default_factory=AnalysisParameters)

    def __post_init__(self) -> None:
        if self.partition_size <= 0:
            raise ConfigurationError("partition_size must be positive")
        if self.log_page_size <= 0:
            raise ConfigurationError("log_page_size must be positive")
        if self.log_record_size <= 0:
            raise ConfigurationError("log_record_size must be positive")
        if self.update_count_threshold <= 0:
            raise ConfigurationError("update_count_threshold must be positive")
        if self.log_directory_size <= 0:
            raise ConfigurationError("log_directory_size must be positive")
        if self.log_block_size <= 0:
            raise ConfigurationError("log_block_size must be positive")
        if self.log_window_pages <= self.log_window_grace_pages:
            raise ConfigurationError(
                "log_window_pages must exceed log_window_grace_pages"
            )
        if self.checkpoint_slots <= 0:
            raise ConfigurationError("checkpoint_slots must be positive")
        if self.log_page_cache_pages < 0:
            raise ConfigurationError("log_page_cache_pages cannot be negative")
        if self.io_retry_budget < 0:
            raise ConfigurationError("io_retry_budget cannot be negative")
        if self.logging_mode not in ("value", "command", "adaptive"):
            raise ConfigurationError(
                "logging_mode must be 'value', 'command', or 'adaptive'"
            )
        if self.adaptive_log_threshold <= 0:
            raise ConfigurationError("adaptive_log_threshold must be positive")
        if self.condense_pages_per_slice <= 0:
            raise ConfigurationError("condense_pages_per_slice must be positive")
        if self.condense_lag_target_pages < 0:
            raise ConfigurationError(
                "condense_lag_target_pages cannot be negative"
            )

    @property
    def records_per_page(self) -> int:
        """Average-size log records that fit in one log page."""
        return max(1, self.log_page_size // self.log_record_size)

    @property
    def pages_per_checkpoint(self) -> float:
        """Average log pages accumulated before an update-count checkpoint."""
        return (
            self.update_count_threshold * self.log_record_size / self.log_page_size
        )
