"""Byte-size and time units used throughout the library."""

from __future__ import annotations

KILOBYTE = 1024
MEGABYTE = 1024 * KILOBYTE
GIGABYTE = 1024 * MEGABYTE

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def format_bytes(n: int) -> str:
    """Render a byte count in the largest unit that keeps it readable.

    >>> format_bytes(48 * 1024)
    '48.0 KB'
    """
    value = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024.0 or unit == "GB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Render a duration with a sensible unit.

    >>> format_seconds(0.0032)
    '3.200 ms'
    """
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= MILLISECOND:
        return f"{seconds / MILLISECOND:.3f} ms"
    return f"{seconds / MICROSECOND:.3f} us"
