"""The Stable Log Buffer (SLB).

Section 2.3.1: REDO log records are placed in stable memory so that
transactions commit *instantly* — they never wait for a log-disk flush.
The SLB is managed as a set of fixed-size blocks handed to transactions on
demand; a block belongs to one transaction for its lifetime, so critical
sections are needed only for block allocation, never for log writing —
this removes the classical log-tail hot spot.

Chains of blocks live on one of two lists: the *uncommitted* transaction
list and the *committed* transaction list, the latter kept in commit order
so the recovery CPU can drain records to the Stable Log Tail in that
order.  After a crash the committed list (stable) is drained normally and
the uncommitted list is discarded — those transactions never committed.

The SLB also hosts the system's well-known communication areas (the
checkpoint request queue of section 2.4 and the catalog partition address
list of section 2.5), exposed through :meth:`put_well_known` /
:meth:`get_well_known`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import LogError, StableMemoryFullError, TransactionStateError
from repro.concurrency.latch import Latch
from repro.sim.stable_memory import StableMemory
from repro.wal.records import RedoRecord

#: Stable bytes reserved for the well-known communication areas.
WELL_KNOWN_RESERVE = 64 * 1024

#: Well-known key of the stable command log: encoded TxnCommand records
#: keyed by command sequence number, plus the sequence counter itself.
#: Lives beside the checkpoint queue and catalog locations — command
#: records never enter the bin-sort pipeline (docs/LOGGING.md).
COMMAND_LOG_KEY = "command-log"


@dataclass
class _LogBlock:
    """One fixed-size block of the SLB, dedicated to a single transaction."""

    block_id: int
    records: list[RedoRecord] = field(default_factory=list)
    used_bytes: int = 0


class TransactionLogChain:
    """The chain of SLB blocks belonging to one transaction."""

    def __init__(self, txn_id: int, block_size: int):
        self.txn_id = txn_id
        self.block_size = block_size
        self.blocks: list[_LogBlock] = []
        self.record_count = 0

    def current_block(self) -> _LogBlock | None:
        return self.blocks[-1] if self.blocks else None

    def fits_in_current(self, record: RedoRecord) -> bool:
        block = self.current_block()
        return block is not None and block.used_bytes + record.size_bytes <= self.block_size

    def append_to_current(self, record: RedoRecord) -> None:
        block = self.current_block()
        if block is None:
            raise LogError("no block allocated to this chain")
        block.records.append(record)
        block.used_bytes += record.size_bytes
        self.record_count += 1

    def records(self) -> Iterator[RedoRecord]:
        for block in self.blocks:
            yield from block.records


class StableLogBuffer:
    """Stable RAM region holding per-transaction REDO chains."""

    def __init__(self, stable: StableMemory, block_size: int):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.stable = stable
        self.block_size = block_size
        self.block_latch = Latch("slb-block-free-list")
        self._next_block_id = 1  # guarded-by: _mutex
        self._uncommitted: dict[int, TransactionLogChain] = {}  # guarded-by: _mutex
        #: Committed chains in commit order, awaiting the recovery CPU.
        self._committed: list[TransactionLogChain] = []  # guarded-by: _mutex
        #: Prepared chains (2PC participants awaiting the coordinator's
        #: verdict), keyed by txn id with the encoded TxnPrepare record.
        #: Stable like the committed list: a crash keeps these chains and
        #: restart resolves them from the coordinator's decision table.
        self._prepared: dict[int, tuple[TransactionLogChain, bytes]] = {}  # guarded-by: _mutex
        self._well_known: dict[str, object] = {}  # guarded-by: _mutex
        self.stable.allocate("slb-well-known", WELL_KNOWN_RESERVE, self._well_known)
        #: Serialises the chain lists and statistics between the main
        #: CPU's transaction threads and the recovery thread's drain.
        #: Lock order: ``_mutex`` → ``block_latch`` → stable-memory lock;
        #: the block latch is only ever taken under the mutex, so its
        #: raise-on-contention semantics stay meaningful (a contended
        #: latch would indicate a hole in the mutex discipline).
        self._mutex = threading.RLock()
        # statistics
        self.records_written = 0
        self.bytes_written = 0
        self.commits = 0
        self.aborts = 0
        self.prepares = 0
        #: Per-logging-mode commit counts and stable log bytes, keyed by
        #: the mode a transaction actually committed under ("value",
        #: "command", "adaptive-value", "adaptive-command").
        self.mode_commits: dict[str, int] = {}  # guarded-by: _mutex
        self.mode_bytes: dict[str, int] = {}  # guarded-by: _mutex

    # -- transaction chains ------------------------------------------------------

    def open_chain(self, txn_id: int) -> TransactionLogChain:
        with self._mutex:
            if txn_id in self._uncommitted:
                raise TransactionStateError(f"txn {txn_id} already has an open chain")
            chain = TransactionLogChain(txn_id, self.block_size)
            self._uncommitted[txn_id] = chain
            return chain

    def append(self, txn_id: int, record: RedoRecord) -> None:
        """Write one REDO record into the transaction's chain.

        Raises :class:`StableMemoryFullError` when no block can be
        allocated — the main CPU must let the recovery CPU drain the
        committed list and retry (back-pressure).
        """
        with self._mutex:
            chain = self._require_open(txn_id)
            if not chain.fits_in_current(record):
                self._allocate_block(chain)
            chain.append_to_current(record)
            self.records_written += 1
            self.bytes_written += record.size_bytes

    def _allocate_block(self, chain: TransactionLogChain) -> None:  # caller-holds: _mutex
        # Block allocation is the one critical section of the log path.
        with self.block_latch.held_by(chain.txn_id):
            block_id = self._next_block_id
            try:
                self.stable.allocate(f"slb-block-{block_id}", self.block_size)
            except StableMemoryFullError:
                raise StableMemoryFullError(
                    "Stable Log Buffer exhausted; drain committed records"
                ) from None
            self._next_block_id += 1
            chain.blocks.append(_LogBlock(block_id))

    def _require_open(self, txn_id: int) -> TransactionLogChain:  # caller-holds: _mutex
        try:
            return self._uncommitted[txn_id]
        except KeyError:
            raise TransactionStateError(
                f"txn {txn_id} has no open log chain"
            ) from None

    # -- commit / abort --------------------------------------------------------------

    def commit(self, txn_id: int) -> None:
        """Move the chain to the committed list (in commit order).

        This is the *entire* commit-time log work: the records are already
        in stable memory, so the transaction is durable the moment the
        chain changes lists.
        """
        with self._mutex:
            chain = self._require_open(txn_id)
            del self._uncommitted[txn_id]
            self._committed.append(chain)
            self.commits += 1

    def abort(self, txn_id: int) -> None:
        """Discard the chain of an aborting transaction and free its blocks."""
        with self._mutex:
            chain = self._uncommitted.pop(txn_id, None)
            if chain is None:
                return
            self._free_chain(chain)
            self.aborts += 1

    # -- command logging (docs/LOGGING.md) ----------------------------------------------

    def _command_log(self) -> dict:  # caller-holds: _mutex
        log = self._well_known.get(COMMAND_LOG_KEY)
        if log is None:
            log = {"seq": 0, "entries": {}}
            self._well_known[COMMAND_LOG_KEY] = log
        return log

    @property
    def command_seq(self) -> int:
        """Highest command sequence number assigned so far (stable)."""
        with self._mutex:
            return self._command_log()["seq"]

    def commit_command(self, txn_id: int, build) -> int:
        """Commit a command-logged transaction atomically.

        ``build(csn)`` returns ``(payload, barriers)`` — the encoded
        :class:`~repro.wal.records.TxnCommand` for the freshly assigned
        sequence number and the :class:`~repro.wal.records.CommandBarrier`
        records to append to the chain.  Under one mutex hold: the csn is
        assigned, the command record lands in the stable command log, the
        barriers join the chain, and the chain moves to the committed
        list — so the commit point is exactly the same stable-memory
        transition value mode uses, just with a different record mix.

        Raises :class:`StableMemoryFullError` with the chain intact (the
        caller drains and retries) if the barriers need a block the SLB
        cannot allocate.
        """
        with self._mutex:
            chain = self._require_open(txn_id)
            log = self._command_log()
            csn = log["seq"] + 1
            payload, barriers = build(csn)
            appended = 0
            try:
                for record in barriers:
                    if not chain.fits_in_current(record):
                        self._allocate_block(chain)
                    chain.append_to_current(record)
                    appended += 1
                    self.records_written += 1
                    self.bytes_written += record.size_bytes
            except StableMemoryFullError:
                # Unwind the partial barrier append; the chain must look
                # exactly as it did so the caller can drain and retry.
                if appended:
                    kept = list(chain.records())[:-appended]
                    removed_bytes = sum(
                        r.size_bytes for r in list(chain.records())[-appended:]
                    )
                    self._free_chain(chain)
                    chain.blocks = []
                    chain.record_count = 0
                    for record in kept:
                        if not chain.fits_in_current(record):
                            self._allocate_block(chain)
                        chain.append_to_current(record)
                    self.records_written -= appended
                    self.bytes_written -= removed_bytes
                raise
            log["seq"] = csn
            log["entries"][csn] = bytes(payload)
            self.bytes_written += len(payload)
            del self._uncommitted[txn_id]
            self._committed.append(chain)
            self.commits += 1
            return csn

    def live_commands(self) -> list[tuple[int, bytes]]:
        """``(csn, encoded TxnCommand)`` for every unsettled command."""
        with self._mutex:
            entries = self._command_log()["entries"]
            return sorted(entries.items())

    def discard_commands(self, csns) -> int:
        """Drop settled commands (their effects are in checkpoint images)."""
        with self._mutex:
            entries = self._command_log()["entries"]
            removed = 0
            for csn in list(csns):
                if entries.pop(csn, None) is not None:
                    removed += 1
            return removed

    def filter_chain(self, txn_id: int, keep) -> int:
        """Keep only the chain records for which ``keep(record)`` is true.

        Adaptive-mode conversion: a transaction that executed with value
        logging drops its after-images at commit (its effects will come
        from command re-execution) but must keep its catalog records,
        which are always value-logged.  Returns the number removed.
        """
        with self._mutex:
            chain = self._require_open(txn_id)
            records = list(chain.records())
            kept = [record for record in records if keep(record)]
            removed = len(records) - len(kept)
            if removed == 0:
                return 0
            removed_bytes = sum(r.size_bytes for r in records if not keep(r))
            self._free_chain(chain)
            chain.blocks = []
            chain.record_count = 0
            for record in kept:
                if not chain.fits_in_current(record):
                    self._allocate_block(chain)
                chain.append_to_current(record)
            self.records_written -= removed
            self.bytes_written -= removed_bytes
            return removed

    def note_mode_commit(self, mode: str, nbytes: int) -> None:
        """Account one commit (and its stable log bytes) to a logging mode."""
        with self._mutex:
            self.mode_commits[mode] = self.mode_commits.get(mode, 0) + 1
            self.mode_bytes[mode] = self.mode_bytes.get(mode, 0) + nbytes

    def mode_stats(self) -> tuple[dict[str, int], dict[str, int]]:
        """A consistent snapshot of the per-mode commit/byte counters."""
        with self._mutex:
            return dict(self.mode_commits), dict(self.mode_bytes)

    # -- two-phase commit (repro.shard) ------------------------------------------------

    def prepare(self, txn_id: int, prepare_record: bytes) -> None:
        """Move the chain to the prepared list with its PREPARE record.

        The chain's blocks are already stable, so — exactly like commit —
        the prepare is durable the moment the chain changes lists.  The
        encoded :class:`~repro.wal.records.TxnPrepare` travels with the
        chain so restart can resolve the branch without the coordinator
        process (it names the coordinator shard to consult).
        """
        with self._mutex:
            chain = self._require_open(txn_id)
            del self._uncommitted[txn_id]
            self._prepared[txn_id] = (chain, bytes(prepare_record))
            self.prepares += 1

    def commit_prepared(self, txn_id: int) -> None:
        """Phase-2 COMMIT: append the prepared chain to the committed list."""
        with self._mutex:
            entry = self._prepared.pop(txn_id, None)
            if entry is None:
                raise TransactionStateError(f"txn {txn_id} has no prepared chain")
            chain, _ = entry
            self._committed.append(chain)
            self.commits += 1

    def abort_prepared(self, txn_id: int) -> None:
        """Phase-2 ABORT (or presumed abort at restart): free the chain."""
        with self._mutex:
            entry = self._prepared.pop(txn_id, None)
            if entry is None:
                raise TransactionStateError(f"txn {txn_id} has no prepared chain")
            chain, _ = entry
            self._free_chain(chain)
            self.aborts += 1

    def prepared_txns(self) -> list[tuple[int, bytes]]:
        """``(txn_id, encoded TxnPrepare)`` for every in-doubt chain."""
        with self._mutex:
            return [
                (txn_id, payload)
                for txn_id, (_, payload) in sorted(self._prepared.items())
            ]

    @property
    def prepared_txn_ids(self) -> list[int]:
        with self._mutex:
            return sorted(self._prepared)

    def _free_chain(self, chain: TransactionLogChain) -> None:
        for block in chain.blocks:
            self.stable.release(f"slb-block-{block.block_id}")

    def truncate_chain(self, txn_id: int, keep_records: int) -> int:
        """Discard a chain's records beyond the first ``keep_records``.

        Used by statement-level rollback: a failed operation's REDO
        records must leave the stable chain, or replay after a later
        commit would reapply work the statement rolled back.  Returns the
        number of records removed.
        """
        with self._mutex:
            chain = self._require_open(txn_id)
            if keep_records < 0:
                raise ValueError("keep_records cannot be negative")
            if keep_records >= chain.record_count:
                return 0
            kept = list(chain.records())[:keep_records]
            removed = chain.record_count - keep_records
            self._free_chain(chain)
            chain.blocks = []
            chain.record_count = 0
            for record in kept:
                if not chain.fits_in_current(record):
                    self._allocate_block(chain)
                chain.append_to_current(record)
            self.records_written -= removed
            return removed

    # -- recovery-CPU drain ------------------------------------------------------------

    def committed_record_count(self) -> int:
        with self._mutex:
            return sum(chain.record_count for chain in self._committed)

    def drain_committed(self, max_records: int | None = None) -> list[RedoRecord]:
        """Remove and return committed records in commit order.

        The recovery CPU calls this to feed the Stable Log Tail.  Blocks
        are freed as their chains are fully consumed.  ``max_records``
        bounds one drain step so the simulation can interleave work.
        """
        drained: list[RedoRecord] = []
        with self._mutex:
            while self._committed:
                chain = self._committed[0]
                remaining = None if max_records is None else max_records - len(drained)
                if remaining is not None and remaining <= 0:
                    break
                records = list(chain.records())
                if remaining is not None and len(records) > remaining:
                    # Partially drain the head chain: keep the tail records.
                    drained.extend(records[:remaining])
                    self._retain_tail(chain, records[remaining:])
                    break
                drained.extend(records)
                self._committed.pop(0)
                self._free_chain(chain)
        return drained

    def requeue_committed(self, records: list[RedoRecord]) -> None:
        """Return drained-but-unsorted records to the head of the
        committed list.

        The recovery CPU's SLB → SLT move is a stable-to-stable transfer:
        when a crash interrupts its sorting loop, records it drained but
        never deposited must reappear for the post-restart drain, in their
        original commit order, or committed work would be lost.
        """
        if not records:
            return
        with self._mutex:
            chain = TransactionLogChain(-1, self.block_size)
            for record in records:
                if not chain.fits_in_current(record):
                    self._allocate_block(chain)
                chain.append_to_current(record)
            self._committed.insert(0, chain)

    def _retain_tail(self, chain: TransactionLogChain, tail: list[RedoRecord]) -> None:  # caller-holds: _mutex
        """Rebuild the head chain to contain only its undrained records."""
        self._free_chain(chain)
        chain.blocks = []
        chain.record_count = 0
        for record in tail:
            if not chain.fits_in_current(record):
                self._allocate_block(chain)
            chain.append_to_current(record)

    # -- crash behaviour -----------------------------------------------------------------

    def discard_uncommitted(self) -> int:
        """Post-crash policy: drop chains of transactions that never
        committed.  Returns the number of chains discarded.

        Prepared chains are *kept*: a prepared branch promised the
        coordinator it could still commit, so only in-doubt resolution
        (restart consulting the decision table) may settle its fate.
        """
        with self._mutex:
            count = len(self._uncommitted)
            for chain in self._uncommitted.values():
                self._free_chain(chain)
            self._uncommitted.clear()
            return count

    # -- well-known communication areas -----------------------------------------------------

    def put_well_known(self, key: str, value: object) -> None:
        """Store a value in the SLB's well-known area (survives crashes)."""
        with self._mutex:
            self._well_known[key] = value

    def get_well_known(self, key: str, default: object = None) -> object:
        with self._mutex:
            return self._well_known.get(key, default)

    # -- inspection ---------------------------------------------------------------------------

    @property
    def uncommitted_txn_ids(self) -> list[int]:
        with self._mutex:
            return sorted(self._uncommitted)

    @property
    def committed_chain_count(self) -> int:
        with self._mutex:
            return len(self._committed)

    def used_blocks(self) -> int:
        with self._mutex:
            return (
                sum(len(chain.blocks) for chain in self._uncommitted.values())
                + sum(len(chain.blocks) for chain, _ in self._prepared.values())
                + sum(len(chain.blocks) for chain in self._committed)
            )
