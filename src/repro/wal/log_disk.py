"""The log disk: page-addressed REDO storage with a reusable log window.

Section 2.3.3: the available log space is constant and reused over time.
The *log window* is a fixed span of pages that slides forward as new pages
are written; active log information about to fall off the end forces an
age-triggered checkpoint (with a grace period between trigger and actual
reuse).  Pages that leave the window are handed to the archive component —
the paper rolls them to tape for media recovery; we keep them in an
in-memory :class:`ArchiveStore` so media-failure scenarios remain
exercisable.

Log pages are duplexed across two simulated disks (section 2.2) and carry
the owning partition's address as a consistency check plus, on the first
page of each directory group, the embedded directory of the previous group
(section 2.3.3, Figure 4).
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.errors import LogError, LogWindowOverrunError
from repro.common.types import NULL_LSN, PartitionAddress
from repro.sim.chaos import (
    crash_point,
    fault_point,
    register_crash_point,
    register_fault_point,
)
from repro.sim.disk import DuplexedDisk
from repro.sim.faults import RetryPolicy, TransientIOStats, run_with_retry

register_crash_point(
    "log-disk.append.before-write",
    "LSN assigned, page not yet on either spindle",
)
register_crash_point(
    "log-disk.append.after-write",
    "page durable on both spindles, window not yet advanced",
)
register_fault_point(
    "log-disk.write",
    "transient controller fault on a duplexed log-page write",
)
register_fault_point(
    "log-disk.read",
    "transient controller fault on a duplexed log-page read",
)
from repro.wal.records import (
    RedoRecord,
    decode_records,
    decode_records_compact,
    encode_record_compact,
)

#: Partition segment value marking a mixed archive page (section 2.4: partial
#: bin pages are combined with other partitions' records into full pages).
ARCHIVE_SEGMENT = -1

_PAGE_HEADER = struct.Struct("<iiqHI")  # segment, partition, lsn, dir_len, body_len


def page_owner_from_blob(blob: bytes) -> PartitionAddress:
    """The owning partition stamped in a page blob's header.

    Header-only: no record decoding, so ownership checks on pages that
    turn out to be irrelevant (other partitions, audit markers) cost one
    struct unpack on top of the verified read that produced the blob.
    """
    segment, partition, _, _, _ = _PAGE_HEADER.unpack_from(blob, 0)
    return PartitionAddress(segment, partition)


@dataclass
class LogPage:
    """One page of REDO records for a single partition (or a mixed
    archive page)."""

    partition: PartitionAddress
    records: list[RedoRecord]
    #: Directory of the previous group's page LSNs; non-empty only on the
    #: first page of a new directory group.
    embedded_directory: list[int] = field(default_factory=list)
    #: Assigned at write time.
    lsn: int = NULL_LSN

    @property
    def is_archive_page(self) -> bool:
        return self.partition.segment == ARCHIVE_SEGMENT

    def encode(self) -> bytes:
        if self.is_archive_page:
            # mixed pages span partitions: full record format
            body = b"".join(record.encode() for record in self.records)
        else:
            # dedicated pages condense the log: the partition address is
            # stripped from every record (section 2.3.3 point 3) — the
            # page header carries it once for all of them
            body = b"".join(encode_record_compact(r) for r in self.records)
        header = _PAGE_HEADER.pack(
            self.partition.segment,
            self.partition.partition,
            self.lsn,
            len(self.embedded_directory),
            len(body),
        )
        directory = b"".join(
            struct.pack("<q", lsn) for lsn in self.embedded_directory
        )
        return header + directory + body

    @classmethod
    def decode(cls, blob: bytes) -> "LogPage":
        segment, partition_no, lsn, dir_len, body_len = _PAGE_HEADER.unpack_from(
            blob, 0
        )
        pos = _PAGE_HEADER.size
        directory = []
        for _ in range(dir_len):
            (entry,) = struct.unpack_from("<q", blob, pos)
            directory.append(entry)
            pos += 8
        body = blob[pos : pos + body_len]
        partition = PartitionAddress(segment, partition_no)
        if segment == ARCHIVE_SEGMENT:
            records = decode_records(body)
        else:
            records = decode_records_compact(body, partition)
        return cls(
            partition=partition,
            records=records,
            embedded_directory=directory,
            lsn=lsn,
        )


class ArchiveStore:
    """Pages that slid out of the log window, 'rolled to tape'."""

    def __init__(self):
        self._pages: dict[int, bytes] = {}  # guarded-by: _lock
        #: The recovery thread archives expired pages while restore
        #: workers read archived history concurrently.
        self._lock = threading.Lock()

    def accept(self, lsn: int, blob: bytes) -> None:
        with self._lock:
            self._pages[lsn] = blob

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    def __contains__(self, lsn: int) -> bool:
        with self._lock:
            return lsn in self._pages

    def raw(self, lsn: int) -> bytes:
        """The stored page bytes, undecoded."""
        with self._lock:
            try:
                return self._pages[lsn]
            except KeyError:
                raise LogError(f"archive has no page {lsn}") from None

    def lsns(self) -> list[int]:
        with self._lock:
            return sorted(self._pages)

    def read(self, lsn: int) -> LogPage:
        return LogPage.decode(self.raw(lsn))


class LogDisk:
    """Duplexed log disks plus the sliding log window."""

    def __init__(
        self,
        disks: DuplexedDisk,
        window_pages: int,
        grace_pages: int,
        cache_pages: int = 128,
        retry_policy: RetryPolicy | None = None,
    ):
        if window_pages <= grace_pages:
            raise ValueError("window must be larger than the grace period")
        if cache_pages < 0:
            raise ValueError("cache_pages cannot be negative")
        self.disks = disks
        self.window_pages = window_pages
        self.grace_pages = grace_pages
        self.archive = ArchiveStore()
        #: Transient device faults are retried within this budget and
        #: escalate to ``MediaFailure`` past it; counters land in
        #: ``Database.stats()["transient_io"]["log"]``.
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.io_stats = TransientIOStats()
        self._next_lsn = 0
        self.pages_written = 0
        self.pages_read = 0
        #: Pages moved to the archive by condensing (docs/CONDENSING.md)
        #: before the window slide would have expired them.
        self.pages_condense_reclaimed = 0
        #: Serialises appends (LSN assignment + window slide) and the
        #: read/write counters.  Reads perform disk I/O outside this lock
        #: so phase-2 restore workers genuinely overlap their log reads.
        self._mutex = threading.RLock()
        #: Bounded LRU of decoded pages, shared by the media-recovery
        #: scan, :meth:`page_owner`, and restart reads.  Log pages are
        #: immutable once written (LSNs are never reused), so a cached
        #: decode stays valid until the page is dropped.  Leaf lock.
        self.cache_pages = cache_pages
        self._page_cache: "OrderedDict[int, LogPage]" = OrderedDict()  # guarded-by: _cache_mutex
        self._cache_mutex = threading.Lock()
        self.cache_hits = 0

    # -- window geometry ----------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def window_start(self) -> int:
        """Oldest LSN still inside the log window."""
        return max(0, self._next_lsn - self.window_pages)

    @property
    def age_trigger_lsn(self) -> int:
        """Pages with first LSN below this must be checkpointed now so
        their space can be reclaimed after the grace period."""
        return max(0, self.window_start + self.grace_pages)

    def in_window(self, lsn: int) -> bool:
        return self.window_start <= lsn < self._next_lsn

    # -- I/O -----------------------------------------------------------------------

    def append_page(self, page: LogPage) -> int:
        """Assign the next LSN, write the page (both spindles), slide the
        window, and archive any page that just fell out."""
        with self._mutex:
            page.lsn = self._next_lsn
            self._next_lsn += 1
            self._write_duplexed(page.lsn, page.encode())
            self.pages_written += 1
            self._reclaim_expired()
            return page.lsn

    def append_opaque_page(self, marker_segment: int, body: bytes) -> int:
        """Write a non-REDO page (audit trail) in the same LSN space.

        The page carries the standard framing with ``marker_segment`` as
        its owner so scans can classify it, but its body is opaque to the
        REDO machinery.
        """
        with self._mutex:
            lsn = self._next_lsn
            self._next_lsn += 1
            header = _PAGE_HEADER.pack(marker_segment, 0, lsn, 0, len(body))
            # Same crash bracket and retry path as append_page: opaque
            # pages share the LSN space and the duplexed write path.
            self._write_duplexed(lsn, header + body)
            self.pages_written += 1
            self._reclaim_expired()
            return lsn

    def _write_duplexed(self, lsn: int, blob: bytes) -> None:  # caller-holds: _mutex
        # The fault hook and the primitive
        # write share one lambda so the retry wrapper re-runs both; a
        # fault past the budget escalates to MediaFailure.
        crash_point("log-disk.append.before-write")
        run_with_retry(
            lambda: (
                fault_point("log-disk.write"),
                self.disks.write_page(lsn, blob, sibling=True),
            ),
            self.retry_policy,
            self.io_stats,
            "write",
            f"log-disk write of page {lsn}",
        )
        crash_point("log-disk.append.after-write")

    def read_opaque_page(self, lsn: int, marker_segment: int) -> bytes:
        """Read back an opaque page's body, checking its marker."""
        blob = self.fetch_blob(lsn)
        segment, _, page_lsn, _, body_len = _PAGE_HEADER.unpack_from(blob, 0)
        if segment != marker_segment or page_lsn != lsn:
            raise LogError(f"page {lsn} is not an opaque page of {marker_segment}")
        pos = _PAGE_HEADER.size
        return blob[pos : pos + body_len]

    def fetch_blob(self, lsn: int) -> bytes:
        """One verified read of a page's raw bytes, wherever it lives.

        Pages that left the window are transparently served from the
        archive (the paper's media-recovery path would do the same from
        tape)."""
        if self.disks.contains(lsn):
            blob = self._read_duplexed(lsn)
        elif lsn in self.archive:
            blob = self.archive.raw(lsn)
        else:
            raise LogError(f"log page {lsn} not found on disk or archive")
        with self._mutex:
            self.pages_read += 1
        return blob

    def _read_duplexed(self, lsn: int) -> bytes:
        return run_with_retry(
            lambda: (
                fault_point("log-disk.read"),
                self.disks.read_page(lsn, sibling=True),
            )[1],
            self.retry_policy,
            self.io_stats,
            "read",
            f"log-disk read of page {lsn}",
        )

    def decode_blob(self, lsn: int, blob: bytes) -> LogPage:
        """Decode a fetched blob into a :class:`LogPage`, via the cache.

        A cached decode is returned as-is (pages are immutable); a fresh
        decode is verified against its addressed LSN and cached.
        """
        page = self._cache_get(lsn)
        if page is None:
            page = LogPage.decode(blob)
            if page.lsn != lsn:
                raise LogError(f"log page {lsn} carries LSN {page.lsn}")
            self._cache_put(lsn, page)
        return page

    def read_page(self, lsn: int, *, expected: PartitionAddress | None = None) -> LogPage:
        """Read and decode one log page, optionally verifying its owner.

        A decoded-cache hit skips the disk read entirely; otherwise the
        blob comes from the active window or the archive via
        :meth:`fetch_blob`."""
        page = self._cache_get(lsn)
        if page is None:
            page = self.decode_blob(lsn, self.fetch_blob(lsn))
        if page.lsn != lsn:
            raise LogError(f"log page {lsn} carries LSN {page.lsn}")
        if expected is not None and page.partition != expected:
            raise LogError(
                f"log page {lsn} belongs to {page.partition}, expected {expected}"
            )
        return page

    def page_owner(self, lsn: int) -> PartitionAddress:
        """Peek a page's owning partition (archive/audit markers included).

        A decoded-cache hit answers from the cached page; otherwise this
        is a header-only peek — one verified read, no record decoding.
        """
        page = self._cache_get(lsn)
        if page is not None:
            return page.partition
        return page_owner_from_blob(self.fetch_blob(lsn))

    def all_lsns(self) -> list[int]:
        """Every page LSN still held anywhere: active window plus archive."""
        return sorted(set(self.disks.block_ids()) | set(self.archive.lsns()))

    def drop_page(self, lsn: int) -> None:
        """Forget a page everywhere: both spindles and the decoded cache.

        Used by log-media rescue to discard unreadable blocks; without the
        cache eviction a previously decoded copy would keep serving a page
        the operator declared lost."""
        self.disks.free(lsn)
        with self._cache_mutex:
            self._page_cache.pop(lsn, None)

    # -- decoded-page cache ----------------------------------------------------------

    def _cache_get(self, lsn: int) -> LogPage | None:
        with self._cache_mutex:
            page = self._page_cache.get(lsn)
            if page is not None:
                self._page_cache.move_to_end(lsn)
                self.cache_hits += 1
            return page

    def _cache_put(self, lsn: int, page: LogPage) -> None:
        if self.cache_pages == 0:
            return
        with self._cache_mutex:
            self._page_cache[lsn] = page
            self._page_cache.move_to_end(lsn)
            while len(self._page_cache) > self.cache_pages:
                self._page_cache.popitem(last=False)

    def _reclaim_expired(self) -> None:
        start = self.window_start
        for lsn in [b for b in self.disks.block_ids() if b < start]:
            # Verified duplex read: the archive must never inherit a
            # corrupt copy, and a bad primary must not stop archival
            # while the mirror still holds the page.
            blob = self._read_duplexed(lsn)
            self.archive.accept(lsn, blob)
            self.disks.free(lsn)

    def reclaim_condensed(self, lsns: list[int]) -> int:
        """Retire pages whose records were condensed into a shadow image.

        Condensing (docs/CONDENSING.md) makes a page redundant for memory
        recovery, so its spindle block is freed early — this is how the
        condenser genuinely relieves log-window pressure.  The page still
        moves to the archive first: media recovery and the torn-shadow
        full-history fallback read archived pages transparently through
        :meth:`fetch_blob`.  Pages the window slide already expired are
        skipped.  Returns the number of blocks freed.
        """
        freed = 0
        with self._mutex:
            for lsn in lsns:
                if not self.disks.contains(lsn):
                    continue  # already expired into the archive
                blob = self._read_duplexed(lsn)
                self.archive.accept(lsn, blob)
                self.disks.free(lsn)
                freed += 1
            self.pages_condense_reclaimed += freed
        return freed

    # -- safety check ---------------------------------------------------------------

    def assert_recoverable(self, first_lsn: int, partition: PartitionAddress) -> None:
        """Raise if a partition's oldest log page left the window without a
        checkpoint — the failure the age trigger exists to prevent."""
        if first_lsn != NULL_LSN and first_lsn < self.window_start:
            raise LogWindowOverrunError(
                f"{partition}: first log page {first_lsn} fell off the log "
                f"window (starts at {self.window_start}) before checkpoint"
            )
