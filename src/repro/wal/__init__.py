"""Logging component: the paper's recovery core.

* :mod:`repro.wal.records` — REDO log record formats (section 2.3.2):
  TAG, bin index, transaction id, operation, with binary encode/decode
  and partition-local REDO application.
* :mod:`repro.wal.undo` — volatile UNDO records (never written to disk;
  discarded at commit, applied at abort).
* :mod:`repro.wal.slb` — the Stable Log Buffer: fixed-size blocks chained
  per transaction, committed / uncommitted transaction lists, and the
  well-known communication areas (checkpoint request queue, catalog
  partition address list).
* :mod:`repro.wal.slt` — the Stable Log Tail: per-partition bins with
  update counts, first-page LSNs and log page directories.
* :mod:`repro.wal.log_disk` — the log disk: page-addressed writes, the
  reusable log window, and the First-LSN age-trigger list.
"""

from repro.wal.records import (
    FieldPatch,
    HeapDelete,
    HeapPut,
    HeapReplace,
    IndexNodeFree,
    IndexNodeWrite,
    RedoRecord,
    TupleDelete,
    TupleInsert,
    TupleUpdate,
    decode_record,
    decode_records,
)
from repro.wal.slb import StableLogBuffer, TransactionLogChain
from repro.wal.slt import PartitionBin, StableLogTail
from repro.wal.log_disk import LogDisk, LogPage
from repro.wal.audit import AuditEntry, AuditLog
from repro.wal.undo import UndoRecord

__all__ = [
    "AuditEntry",
    "AuditLog",
    "FieldPatch",
    "HeapDelete",
    "HeapPut",
    "HeapReplace",
    "IndexNodeFree",
    "IndexNodeWrite",
    "LogDisk",
    "LogPage",
    "PartitionBin",
    "RedoRecord",
    "StableLogBuffer",
    "StableLogTail",
    "TransactionLogChain",
    "TupleDelete",
    "TupleInsert",
    "TupleUpdate",
    "UndoRecord",
    "decode_record",
    "decode_records",
]
