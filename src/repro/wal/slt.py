"""The Stable Log Tail (SLT): per-partition bins in stable memory.

Section 2.3.3: the recovery CPU reads committed log records from the SLB
and *sorts* them into partition bins here.  Each partition has a small
permanent information block (we follow the paper's "simplicity in design"
choice of one entry per existing partition); only *active* partitions —
those with outstanding log information — hold the much larger log page
buffer.

The information block holds exactly the four entries of the paper:

* **Partition Address** — stamped on every log page (consistency check).
* **Update Count** — records accumulated since the last checkpoint;
  crossing the threshold marks the partition for an update-count
  checkpoint.
* **LSN of First Log Page** — age monitor; the recovery manager keeps an
  ordered First-LSN list and checks only its head when the log window
  advances.
* **Log Page Directory** — LSNs of the current group of log pages.  When a
  group fills (``directory_size`` pages), the next page embeds the full
  group's directory and starts a new group, so recovery can reach the
  first page in about ``#pages / N`` reads and then stream pages in the
  order they were written.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field

from repro.common.config import SystemConfig
from repro.common.errors import LogError
from repro.common.types import NULL_LSN, PartitionAddress
from repro.sim.stable_memory import StableMemory
from repro.wal.log_disk import LogPage
from repro.wal.records import RedoRecord

#: Stable bytes for one permanent partition information block ("on the
#: order of 50 bytes", section 2.3.3).
INFO_BLOCK_BYTES = 50


class CheckpointReason:
    UPDATE_COUNT = "update-count"
    AGE = "age"


@dataclass
class PartitionBin:
    """One partition's bin: information block plus (when active) a page
    buffer of not-yet-flushed records."""

    bin_index: int
    partition: PartitionAddress
    update_count: int = 0
    first_page_lsn: int = NULL_LSN
    #: LSNs of the current directory group, oldest first (≤ directory_size).
    directory: list[int] = field(default_factory=list)
    #: Total pages flushed to the log disk since the last checkpoint.
    flushed_pages: int = 0
    buffer: list[RedoRecord] = field(default_factory=list)
    buffer_bytes: int = 0
    marked_for_checkpoint: bool = False
    checkpoint_reason: str | None = None
    #: Background-condenser chain (docs/CONDENSING.md), guarded by
    #: :attr:`mutex` like the rest of the bin.  ``condensed_slot`` is the
    #: newest shadow checkpoint image; ``condensed_base_slot`` the regular
    #: catalog slot the chain grew from (None = grown from an empty
    #: partition); pages with LSN ≤ ``condensed_lsn`` are folded into the
    #: shadow image and restart may skip them; ``condensed_pages`` counts
    #: folded pages so lag = flushed_pages - condensed_pages.
    condensed_slot: int | None = None
    condensed_base_slot: int | None = None
    condensed_lsn: int = NULL_LSN
    condensed_pages: int = 0
    #: Per-bin lock (the sharded replacement for the old structure-wide
    #: mutex): guards this bin's buffer, counters, directory and its
    #: ``slt-page-*`` stable area.  Lock order: table mutex -> bin lock ->
    #: stable-memory lock; the first-LSN heap mutex is never taken while
    #: a bin lock is held.
    mutex: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    @property
    def active(self) -> bool:
        """Active = has outstanding log information (section 2.3.3)."""
        return bool(self.buffer) or self.flushed_pages > 0

    @property
    def oldest_lsn(self) -> int:
        return self.first_page_lsn


class StableLogTail:
    """The bin table, living in stable reliable memory."""

    def __init__(self, stable: StableMemory, config: SystemConfig):
        self.stable = stable
        self.config = config
        self._bins: dict[int, PartitionBin] = {}
        self._by_partition: dict[PartitionAddress, int] = {}
        self._next_bin_index = 0  # guarded-by: _mutex
        #: First-LSN min-heap with lazy invalidation: (first_lsn, bin_index).
        self._first_lsn_heap: list[tuple[int, int]] = []  # guarded-by: _heap_mutex
        self._well_known: dict[str, object] = {}  # guarded-by: _mutex
        self.stable.allocate("slt-well-known", 16 * 1024, self._well_known)
        #: Table mutex: guards only the bin *maps* (registration, drop,
        #: snapshots) and the well-known area.  Per-bin state is sharded
        #: onto each :attr:`PartitionBin.mutex`, so the recovery thread
        #: sorting into one bin no longer contends with restore workers
        #: or checkpointers touching other bins.  Lock order:
        #: table mutex → bin lock → stable-memory lock.
        self._mutex = threading.RLock()
        #: Guards the first-LSN min-heap.  Ordered heap mutex → bin lock
        #: (never the reverse: pushes happen after the bin lock drops).
        self._heap_mutex = threading.Lock()
        # statistics; written only by the recovery CPU's sorting/sealing
        # duties (one thread under either engine), read by anyone
        self.records_binned = 0
        self.pages_sealed = 0

    # -- registration --------------------------------------------------------------

    def register_partition(self, partition: PartitionAddress) -> int:
        """Create the permanent information block for a new partition."""
        with self._mutex:
            if partition in self._by_partition:
                raise LogError(f"{partition} already has a bin")
            bin_index = self._next_bin_index
            self._next_bin_index += 1
            self.stable.allocate(f"slt-info-{bin_index}", INFO_BLOCK_BYTES)
            bin_ = PartitionBin(bin_index, partition)
            self._bins[bin_index] = bin_
            self._by_partition[partition] = bin_index
            return bin_index

    def drop_partition(self, partition: PartitionAddress) -> None:
        """Remove a de-allocated partition's bin entirely."""
        with self._mutex:
            bin_index = self.bin_index_of(partition)
            bin_ = self._bins.pop(bin_index)
            del self._by_partition[partition]
            with bin_.mutex:
                self.stable.release(f"slt-info-{bin_index}")
                if f"slt-page-{bin_index}" in self.stable:
                    self.stable.release(f"slt-page-{bin_index}")
                bin_.buffer.clear()

    # -- lookup -----------------------------------------------------------------------

    def bin(self, bin_index: int) -> PartitionBin:
        # Lock-free read: committing transactions resolve bin indexes on
        # every log record, and a single dict lookup is atomic under the
        # GIL; registration only ever adds entries.
        try:
            return self._bins[bin_index]
        except KeyError:
            raise LogError(f"no partition bin {bin_index}") from None

    def bin_index_of(self, partition: PartitionAddress) -> int:
        # Lock-free for the same reason as :meth:`bin`.
        try:
            return self._by_partition[partition]
        except KeyError:
            raise LogError(f"{partition} has no bin") from None

    def bin_for_partition(self, partition: PartitionAddress) -> PartitionBin:
        return self.bin(self.bin_index_of(partition))

    def has_partition(self, partition: PartitionAddress) -> bool:
        return partition in self._by_partition

    def bins(self) -> list[PartitionBin]:
        with self._mutex:
            return [self._bins[i] for i in sorted(self._bins)]

    def active_bins(self) -> list[PartitionBin]:
        return [b for b in self.bins() if b.active]

    # -- the sorting step ----------------------------------------------------------------

    def deposit(self, record: RedoRecord) -> bool:
        """Place one committed record into its partition bin.

        The bin index travels inside the record (direct index — no search,
        section 2.3.2).  Returns True when the bin's page buffer became
        full, i.e. the caller (recovery processor) should seal and flush a
        page.
        """
        bin_ = self.bin(record.bin_index)
        with bin_.mutex:
            if bin_.partition != record.partition_address:
                raise LogError(
                    f"record for {record.partition_address} carries bin index "
                    f"{record.bin_index} of {bin_.partition}"
                )
            if not bin_.buffer and f"slt-page-{bin_.bin_index}" not in self.stable:
                # Partition becomes active: allocate its page buffer.
                self.stable.allocate(
                    f"slt-page-{bin_.bin_index}", self.config.log_page_size
                )
            bin_.buffer.append(record)
            bin_.buffer_bytes += record.size_bytes
            bin_.update_count += 1
            self.records_binned += 1
            return bin_.buffer_bytes >= self.config.log_page_size

    def seal_page(self, bin_index: int) -> LogPage:
        """Turn the bin's buffered records into a flushable log page.

        If the current directory group is full, the new page embeds that
        group's directory and will start a new group once its LSN is known.

        The buffered records stay in the stable bin until
        :meth:`note_page_written` confirms the page is durable on the log
        disk — a crash between seal and write must not lose them.
        """
        bin_ = self.bin(bin_index)
        with bin_.mutex:
            if not bin_.buffer:
                raise LogError(f"bin {bin_index} has nothing to seal")
            embedded = (
                list(bin_.directory)
                if len(bin_.directory) >= self.config.log_directory_size
                else []
            )
            page = LogPage(
                partition=bin_.partition,
                records=list(bin_.buffer),
                embedded_directory=embedded,
            )
            self.pages_sealed += 1
            return page

    def note_page_written(
        self, bin_index: int, lsn: int, flushed_records: int | None = None
    ) -> None:
        """Record a flushed page: drain the now-durable records from the
        bin buffer and update the directory, first-LSN monitor, and the
        First-LSN list used for age triggers."""
        bin_ = self.bin(bin_index)
        newly_first = False
        with bin_.mutex:
            if flushed_records is None:
                flushed_records = len(bin_.buffer)
            flushed = bin_.buffer[:flushed_records]
            del bin_.buffer[:flushed_records]
            bin_.buffer_bytes -= sum(record.size_bytes for record in flushed)
            if bin_.first_page_lsn == NULL_LSN:
                bin_.first_page_lsn = lsn
                newly_first = True
            if len(bin_.directory) >= self.config.log_directory_size:
                bin_.directory = [lsn]  # the page embedded the previous group
            else:
                bin_.directory.append(lsn)
            bin_.flushed_pages += 1
        if newly_first:
            # outside the bin lock: heap mutex -> bin lock is the only
            # permitted nesting direction (see age_candidates)
            with self._heap_mutex:
                heapq.heappush(self._first_lsn_heap, (lsn, bin_index))

    # -- checkpoint triggers -----------------------------------------------------------------

    def update_count_candidates(self) -> list[PartitionBin]:
        """Bins whose update count crossed the threshold and are not yet
        marked for a checkpoint."""
        threshold = self.config.update_count_threshold
        # bins() snapshots the table; the per-bin field reads are racy by
        # design — a count crossing the threshold mid-scan is simply
        # picked up on the next pump, and marking is re-checked by the
        # (single) checkpoint service before a request is enqueued.
        return [
            b
            for b in self.bins()
            if not b.marked_for_checkpoint and b.update_count >= threshold
        ]

    def age_candidates(self, age_trigger_lsn: int) -> list[PartitionBin]:
        """Bins whose first log page is about to fall off the log window.

        Only the heap head needs inspection per advance (section 2.3.3);
        stale heap entries (already checkpointed) are discarded lazily.
        """
        candidates = []
        with self._heap_mutex:
            while self._first_lsn_heap:
                lsn, bin_index = self._first_lsn_heap[0]
                bin_ = self._bins.get(bin_index)
                if bin_ is None:
                    heapq.heappop(self._first_lsn_heap)  # dropped partition
                    continue
                with bin_.mutex:  # heap mutex -> bin lock, never reversed
                    if bin_.first_page_lsn != lsn:
                        heapq.heappop(self._first_lsn_heap)  # stale entry
                        continue
                    if lsn >= age_trigger_lsn:
                        break
                    heapq.heappop(self._first_lsn_heap)
                    if not bin_.marked_for_checkpoint:
                        candidates.append(bin_)
        return candidates

    def mark_for_checkpoint(self, bin_index: int, reason: str) -> None:
        bin_ = self.bin(bin_index)
        with bin_.mutex:
            bin_.marked_for_checkpoint = True
            bin_.checkpoint_reason = reason

    def reset_after_checkpoint(self, bin_index: int) -> list[RedoRecord]:
        """Complete a checkpoint: the bin's log information is no longer
        needed for memory recovery.

        Returns the leftover buffered records; the caller flushes them to
        the log disk (combined into full archive pages) because they are
        still needed for media recovery (section 2.4).
        """
        bin_ = self.bin(bin_index)
        with bin_.mutex:
            leftovers = list(bin_.buffer)
            bin_.buffer.clear()
            bin_.buffer_bytes = 0
            bin_.update_count = 0
            bin_.first_page_lsn = NULL_LSN
            bin_.directory = []
            bin_.flushed_pages = 0
            bin_.marked_for_checkpoint = False
            bin_.checkpoint_reason = None
            if f"slt-page-{bin_index}" in self.stable:
                self.stable.release(f"slt-page-{bin_index}")
            return leftovers

    def clear_condense_state(self, bin_index: int) -> int | None:
        """Forget the bin's condense chain (docs/CONDENSING.md).

        Returns the superseded shadow slot so the caller can free it on
        the checkpoint disk — a copy checkpoint or sweep just installed a
        newer image, so the chain is stale.  ``None`` when no chain
        existed (or the chain's image *is* the catalog slot, which a flip
        just installed — the caller must not free that one, so flips
        never route through here).
        """
        bin_ = self.bin(bin_index)
        with bin_.mutex:
            stale = bin_.condensed_slot
            bin_.condensed_slot = None
            bin_.condensed_base_slot = None
            bin_.condensed_lsn = NULL_LSN
            bin_.condensed_pages = 0
            return stale

    def reset_after_flip(self, bin_index: int, flip_lsn: int) -> None:
        """Complete a flip checkpoint (docs/CONDENSING.md).

        The catalog now points at the shadow image, which folds every log
        page with LSN ≤ ``flip_lsn`` — those pages leave the directory and
        the age monitor.  Unlike :meth:`reset_after_checkpoint` the buffer
        stays: its records post-date the image and are still needed for
        memory recovery.  Pages flushed between the flip decision and this
        acknowledgement carry higher LSNs and survive the filter, so the
        reset is race-safe.  The condense chain itself is kept — the next
        condenser pass rebases it onto the flipped image.
        """
        bin_ = self.bin(bin_index)
        push_first = NULL_LSN
        with bin_.mutex:
            # Flip eligibility required lag 0 (condensed_pages ==
            # flushed_pages) at decision time, and the condenser skips
            # bins whose checkpoint is in flight, so condensed_pages
            # still equals the at-decision flush count: the difference
            # is exactly the pages that raced in since.
            newer = bin_.flushed_pages - bin_.condensed_pages
            remaining = [lsn for lsn in bin_.directory if lsn > flip_lsn]
            bin_.flushed_pages = newer
            bin_.condensed_pages = 0
            if newer == len(remaining):
                bin_.directory = remaining
                new_first = remaining[0] if remaining else NULL_LSN
                if new_first != bin_.first_page_lsn:
                    bin_.first_page_lsn = new_first
                    push_first = new_first
            # else: so many pages raced in that a whole group rolled into
            # an embedded directory — keep directory and age monitor as
            # they are (conservatively old); condensed_lsn still bounds
            # what restart reads.
            bin_.update_count = len(bin_.buffer)
            bin_.marked_for_checkpoint = False
            bin_.checkpoint_reason = None
            if not bin_.buffer and f"slt-page-{bin_index}" in self.stable:
                self.stable.release(f"slt-page-{bin_index}")
        if push_first != NULL_LSN:
            # outside the bin lock: heap mutex -> bin lock only (the old
            # heap entry, if any, goes stale and is discarded lazily)
            with self._heap_mutex:
                heapq.heappush(self._first_lsn_heap, (push_first, bin_index))

    # -- well-known area (catalog address list duplicate, section 2.5) -------------------------

    def put_well_known(self, key: str, value: object) -> None:
        with self._mutex:
            self._well_known[key] = value

    def get_well_known(self, key: str, default: object = None) -> object:
        with self._mutex:
            return self._well_known.get(key, default)
