"""REDO log record formats.

Section 2.3.2: every log record has four parts — TAG (record type), Bin
Index (direct index into the partition bin table), Transaction Id, and the
Operation.  A record corresponds to exactly one entity in exactly one
partition and is referenced by memory address (Segment Number, Partition
Number, Partition Offset).

Two flavours exist, mirroring the paper:

* *Value/physical* records install bytes at an entity address — tuple
  inserts/updates/deletes and index-component images (one record per
  updated index component).
* *Operation* records re-execute an operation against the partition's
  string-space heap, which is managed as a heap and not two-phase locked,
  so REDO must replay the operation rather than patch bytes.  Heap handle
  allocation is deterministic, which :class:`HeapPut` verifies at replay.

Records serialise to a compact binary wire format so the bytes that reach
the simulated log disk are the bytes recovery decodes.
"""

from __future__ import annotations

import dataclasses
import struct
from dataclasses import dataclass
from typing import ClassVar

from repro.common.errors import LogError
from repro.common.types import EntityAddress, PartitionAddress
from repro.storage.partition import Partition

_HEADER = struct.Struct("<BIQ")  # tag, bin_index, txn_id
_ENTITY = struct.Struct("<iiq")  # segment, partition, offset
_PARTITION = struct.Struct("<ii")  # segment, partition
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

_REGISTRY: dict[int, type["RedoRecord"]] = {}


def _register(cls: type["RedoRecord"]) -> type["RedoRecord"]:
    if cls.TAG in _REGISTRY:
        raise AssertionError(f"duplicate log record tag {cls.TAG}")
    _REGISTRY[cls.TAG] = cls
    return cls


@dataclass(frozen=True, slots=True)
class RedoRecord:
    """Base class: header fields shared by every REDO record."""

    TAG: ClassVar[int] = 0

    txn_id: int
    bin_index: int

    # -- interface -------------------------------------------------------------

    @property
    def partition_address(self) -> PartitionAddress:
        raise NotImplementedError

    def apply(self, partition: Partition) -> None:
        """Re-execute this operation against ``partition`` (REDO)."""
        raise NotImplementedError

    def _payload(self) -> bytes:
        raise NotImplementedError

    # -- wire format --------------------------------------------------------------

    def encode(self) -> bytes:
        return _HEADER.pack(self.TAG, self.bin_index, self.txn_id) + self._payload()

    @property
    def size_bytes(self) -> int:
        return _HEADER.size + len(self._payload())

    def with_bin_index(self, bin_index: int) -> "RedoRecord":
        """Copy of this record carrying a (re)assigned bin index."""
        if bin_index == self.bin_index:
            return self
        values = {
            field.name: getattr(self, field.name) for field in dataclasses.fields(self)
        }
        values["bin_index"] = bin_index
        return type(self)(**values)

    # -- shared helpers ---------------------------------------------------------------

    @staticmethod
    def _check_address(record_addr: PartitionAddress, partition: Partition) -> None:
        if record_addr != partition.address:
            raise LogError(
                f"log record for {record_addr} applied to {partition.address}"
            )


def _encode_entity(address: EntityAddress) -> bytes:
    return _ENTITY.pack(address.segment, address.partition, address.offset)


def _decode_entity(buf: bytes, pos: int) -> tuple[EntityAddress, int]:
    segment, partition, offset = _ENTITY.unpack_from(buf, pos)
    return EntityAddress(segment, partition, offset), pos + _ENTITY.size


def _encode_blob(data: bytes) -> bytes:
    return _U32.pack(len(data)) + data


def _decode_blob(buf: bytes, pos: int) -> tuple[bytes, int]:
    (length,) = _U32.unpack_from(buf, pos)
    pos += _U32.size
    return buf[pos : pos + length], pos + length


# ------------------------------------------------------------------------------
# Relation (tuple) records
# ------------------------------------------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class TupleInsert(RedoRecord):
    """Install a new tuple at a recorded entity address."""

    TAG: ClassVar[int] = 1

    address: EntityAddress
    data: bytes

    @property
    def partition_address(self) -> PartitionAddress:
        return self.address.partition_address

    def apply(self, partition: Partition) -> None:
        # Upsert: after a crash the replayed log may repeat a prefix of
        # records already reflected in the recovered image (a page written
        # but not yet noted, or an image newer than part of its log).
        # Full-order replay makes the last writer win, so re-installing at
        # an occupied offset is safe; offsets are never reused.
        self._check_address(self.partition_address, partition)
        if self.address.offset in partition:
            partition.update(self.address.offset, self.data)
        else:
            partition.insert_at(self.address.offset, self.data)

    def _payload(self) -> bytes:
        return _encode_entity(self.address) + _encode_blob(self.data)

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        address, pos = _decode_entity(buf, pos)
        data, pos = _decode_blob(buf, pos)
        return cls(txn_id, bin_index, address, data), pos


@_register
@dataclass(frozen=True, slots=True)
class TupleUpdate(RedoRecord):
    """Overwrite the whole tuple at an entity address."""

    TAG: ClassVar[int] = 2

    address: EntityAddress
    data: bytes

    @property
    def partition_address(self) -> PartitionAddress:
        return self.address.partition_address

    def apply(self, partition: Partition) -> None:
        self._check_address(self.partition_address, partition)
        partition.update(self.address.offset, self.data)

    def _payload(self) -> bytes:
        return _encode_entity(self.address) + _encode_blob(self.data)

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        address, pos = _decode_entity(buf, pos)
        data, pos = _decode_blob(buf, pos)
        return cls(txn_id, bin_index, address, data), pos


@_register
@dataclass(frozen=True, slots=True)
class TupleDelete(RedoRecord):
    """Remove the tuple at an entity address."""

    TAG: ClassVar[int] = 3

    address: EntityAddress

    @property
    def partition_address(self) -> PartitionAddress:
        return self.address.partition_address

    def apply(self, partition: Partition) -> None:
        # Tolerates an already-deleted tuple (duplicate replay prefix).
        self._check_address(self.partition_address, partition)
        if self.address.offset in partition:
            partition.delete(self.address.offset)

    def _payload(self) -> bytes:
        return _encode_entity(self.address)

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        address, pos = _decode_entity(buf, pos)
        return cls(txn_id, bin_index, address), pos


@_register
@dataclass(frozen=True, slots=True)
class FieldPatch(RedoRecord):
    """Update one field: patch a byte range inside the stored tuple.

    This is the paper's "update a field" relation record; it is much
    smaller than a whole-tuple update (8-24 bytes for numeric fields).
    """

    TAG: ClassVar[int] = 4

    address: EntityAddress
    start: int
    data: bytes

    @property
    def partition_address(self) -> PartitionAddress:
        return self.address.partition_address

    def apply(self, partition: Partition) -> None:
        self._check_address(self.partition_address, partition)
        current = partition.read(self.address.offset)
        end = self.start + len(self.data)
        if end > len(current):
            raise LogError(
                f"field patch [{self.start}:{end}] exceeds tuple of "
                f"{len(current)} bytes at {self.address}"
            )
        patched = current[: self.start] + self.data + current[end:]
        partition.update(self.address.offset, patched)

    def _payload(self) -> bytes:
        return (
            _encode_entity(self.address)
            + _U16.pack(self.start)
            + _encode_blob(self.data)
        )

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        address, pos = _decode_entity(buf, pos)
        (start,) = _U16.unpack_from(buf, pos)
        pos += _U16.size
        data, pos = _decode_blob(buf, pos)
        return cls(txn_id, bin_index, address, start, data), pos


# ------------------------------------------------------------------------------
# String-space (heap) operation records
# ------------------------------------------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class HeapPut(RedoRecord):
    """Re-execute a string-space put at its recorded handle."""

    TAG: ClassVar[int] = 5

    partition: PartitionAddress
    handle: int
    data: bytes

    @property
    def partition_address(self) -> PartitionAddress:
        return self.partition

    def apply(self, partition: Partition) -> None:
        # Upsert on duplicate replay prefix (see TupleInsert.apply): a
        # later HeapReplace may already be reflected in the image, so the
        # occupied bytes can legitimately differ — last writer wins.
        self._check_address(self.partition, partition)
        if self.handle in partition.heap:
            partition.heap.replace(self.handle, self.data)
        else:
            partition.heap.put_at(self.handle, self.data)

    def _payload(self) -> bytes:
        return (
            _PARTITION.pack(self.partition.segment, self.partition.partition)
            + _U32.pack(self.handle)
            + _encode_blob(self.data)
        )

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        segment, part_no = _PARTITION.unpack_from(buf, pos)
        pos += _PARTITION.size
        (handle,) = _U32.unpack_from(buf, pos)
        pos += _U32.size
        data, pos = _decode_blob(buf, pos)
        return cls(txn_id, bin_index, PartitionAddress(segment, part_no), handle, data), pos


@_register
@dataclass(frozen=True, slots=True)
class HeapReplace(RedoRecord):
    """Re-execute an in-place string replacement."""

    TAG: ClassVar[int] = 6

    partition: PartitionAddress
    handle: int
    data: bytes

    @property
    def partition_address(self) -> PartitionAddress:
        return self.partition

    def apply(self, partition: Partition) -> None:
        self._check_address(self.partition, partition)
        partition.heap.replace(self.handle, self.data)

    def _payload(self) -> bytes:
        return (
            _PARTITION.pack(self.partition.segment, self.partition.partition)
            + _U32.pack(self.handle)
            + _encode_blob(self.data)
        )

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        segment, part_no = _PARTITION.unpack_from(buf, pos)
        pos += _PARTITION.size
        (handle,) = _U32.unpack_from(buf, pos)
        pos += _U32.size
        data, pos = _decode_blob(buf, pos)
        return cls(txn_id, bin_index, PartitionAddress(segment, part_no), handle, data), pos


@_register
@dataclass(frozen=True, slots=True)
class HeapDelete(RedoRecord):
    """Re-execute a string-space delete."""

    TAG: ClassVar[int] = 7

    partition: PartitionAddress
    handle: int

    @property
    def partition_address(self) -> PartitionAddress:
        return self.partition

    def apply(self, partition: Partition) -> None:
        # Tolerates an already-deleted handle (duplicate replay prefix).
        self._check_address(self.partition, partition)
        if self.handle in partition.heap:
            partition.heap.delete(self.handle)

    def _payload(self) -> bytes:
        return _PARTITION.pack(
            self.partition.segment, self.partition.partition
        ) + _U32.pack(self.handle)

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        segment, part_no = _PARTITION.unpack_from(buf, pos)
        pos += _PARTITION.size
        (handle,) = _U32.unpack_from(buf, pos)
        pos += _U32.size
        return cls(txn_id, bin_index, PartitionAddress(segment, part_no), handle), pos


# ------------------------------------------------------------------------------
# Index-component records
# ------------------------------------------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class IndexNodeWrite(RedoRecord):
    """Install the after-image of one index component (T-Tree node,
    hash bucket, or index anchor).

    A single index update may touch several components; the paper writes
    one record per updated component (section 2.3.2).  REDO is an upsert:
    the component may or may not exist in the checkpoint image.
    """

    TAG: ClassVar[int] = 8

    address: EntityAddress
    data: bytes

    @property
    def partition_address(self) -> PartitionAddress:
        return self.address.partition_address

    def apply(self, partition: Partition) -> None:
        self._check_address(self.partition_address, partition)
        if self.address.offset in partition:
            partition.update(self.address.offset, self.data)
        else:
            partition.insert_at(self.address.offset, self.data)

    def _payload(self) -> bytes:
        return _encode_entity(self.address) + _encode_blob(self.data)

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        address, pos = _decode_entity(buf, pos)
        data, pos = _decode_blob(buf, pos)
        return cls(txn_id, bin_index, address, data), pos


@_register
@dataclass(frozen=True, slots=True)
class IndexNodeFree(RedoRecord):
    """Release an index component (node merged away or bucket freed)."""

    TAG: ClassVar[int] = 9

    address: EntityAddress

    @property
    def partition_address(self) -> PartitionAddress:
        return self.address.partition_address

    def apply(self, partition: Partition) -> None:
        self._check_address(self.partition_address, partition)
        if self.address.offset in partition:
            partition.delete(self.address.offset)

    def _payload(self) -> bytes:
        return _encode_entity(self.address)

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        address, pos = _decode_entity(buf, pos)
        return cls(txn_id, bin_index, address), pos


# ------------------------------------------------------------------------------
# Command-logging barrier records
# ------------------------------------------------------------------------------
#
# Command logging (docs/LOGGING.md) replaces a transaction's after-images
# with one TxnCommand control record, but the *ordering* of that command
# against the surrounding value-REDO stream must survive the bin sort.
# Barrier records solve this: they are ordinary REDO records — they carry
# a bin index, ride the transaction's SLB chain, and drain through the
# normal bins in commit order — whose ``apply`` is a no-op.  Their only
# job is to mark, inside every involved partition's record stream, the
# exact point at which the command (or a settlement sweep's checkpoint
# image) took effect, so the replay planner can interleave re-execution
# with value REDO at the right LSN.


@_register
@dataclass(frozen=True, slots=True)
class CommandBarrier(RedoRecord):
    """Marks the commit point of command ``csn`` in one partition's stream.

    Emitted at command commit into every partition of the transaction's
    declared relations (and their indexes).  Replay applies the value
    records before the barrier, re-executes the command's script, then
    continues — ``apply`` itself changes nothing.
    """

    TAG: ClassVar[int] = 10

    partition: PartitionAddress
    csn: int

    @property
    def partition_address(self) -> PartitionAddress:
        return self.partition

    def apply(self, partition: Partition) -> None:
        # Position-only marker: the command's effects come from
        # re-executing its script, never from this record.
        self._check_address(self.partition, partition)

    def _payload(self) -> bytes:
        return _PARTITION.pack(
            self.partition.segment, self.partition.partition
        ) + _U32.pack(self.csn)

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        segment, part_no = _PARTITION.unpack_from(buf, pos)
        pos += _PARTITION.size
        (csn,) = _U32.unpack_from(buf, pos)
        pos += _U32.size
        return cls(txn_id, bin_index, PartitionAddress(segment, part_no), csn), pos


@_register
@dataclass(frozen=True, slots=True)
class SweepMarker(RedoRecord):
    """Marks a settlement sweep's image point in one partition's stream.

    A group settlement checkpoint (the command-mode form of the paper's
    action-consistent checkpoint) copies every partition of a declared
    closure while holding their relation locks, then appends one marker
    per copied partition to its own chain *before* releasing the locks
    and committing.  Records ahead of the marker in a partition's stream
    are therefore exactly the records reflected in the installed image —
    replay cuts the stream there instead of re-applying a stale prefix
    over state that command re-execution already produced.
    """

    TAG: ClassVar[int] = 11

    partition: PartitionAddress
    watermark: int

    @property
    def partition_address(self) -> PartitionAddress:
        return self.partition

    def apply(self, partition: Partition) -> None:
        # Position-only marker, exactly like CommandBarrier.
        self._check_address(self.partition, partition)

    def _payload(self) -> bytes:
        return _PARTITION.pack(
            self.partition.segment, self.partition.partition
        ) + _U32.pack(self.watermark)

    @classmethod
    def _decode(cls, txn_id: int, bin_index: int, buf: bytes, pos: int):
        segment, part_no = _PARTITION.unpack_from(buf, pos)
        pos += _PARTITION.size
        (watermark,) = _U32.unpack_from(buf, pos)
        pos += _U32.size
        return cls(
            txn_id, bin_index, PartitionAddress(segment, part_no), watermark
        ), pos


# ------------------------------------------------------------------------------
# Decoding
# ------------------------------------------------------------------------------


def decode_record(buf: bytes, pos: int = 0) -> tuple[RedoRecord, int]:
    """Decode one record starting at ``pos``; returns (record, next_pos)."""
    try:
        tag, bin_index, txn_id = _HEADER.unpack_from(buf, pos)
    except struct.error as exc:
        raise LogError(f"truncated log record header at {pos}") from exc
    cls = _REGISTRY.get(tag)
    if cls is None:
        raise LogError(f"unknown log record tag {tag} at {pos}")
    return cls._decode(txn_id, bin_index, buf, pos + _HEADER.size)  # type: ignore[attr-defined]


def decode_records(buf: bytes) -> list[RedoRecord]:
    """Decode a packed sequence of records (one log page's payload)."""
    records = []
    pos = 0
    while pos < len(buf):
        record, pos = decode_record(buf, pos)
        records.append(record)
    return records


# ------------------------------------------------------------------------------
# Two-phase-commit control records
# ------------------------------------------------------------------------------
#
# Cross-shard transactions (repro.shard) force a PREPARE record into the
# participant's Stable Log Buffer and a decision entry into the
# coordinator's well-known area.  Control records are deliberately *not*
# RedoRecord subclasses: they name no entity and no partition, so they
# must never enter the bin-sort pipeline — they live beside a prepared
# chain (or in the decision table) and are consumed by restart's
# in-doubt resolution, not by REDO replay.

_CONTROL_HEADER = struct.Struct("<BQ")  # tag, txn_id
_CONTROL_REGISTRY: dict[int, type["ControlRecord"]] = {}

#: Control tags live in their own high range so a control byte stream can
#: never be mistaken for (or decoded as) a REDO record.
PREPARE_TAG = 128
DECISION_TAG = 129
COMMAND_TAG = 130


def _register_control(cls: type["ControlRecord"]) -> type["ControlRecord"]:
    if cls.TAG in _CONTROL_REGISTRY:
        raise AssertionError(f"duplicate control record tag {cls.TAG}")
    _CONTROL_REGISTRY[cls.TAG] = cls
    return cls


def _encode_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return _U16.pack(len(raw)) + raw


def _decode_str(buf: bytes, pos: int) -> tuple[str, int]:
    (length,) = _U16.unpack_from(buf, pos)
    pos += _U16.size
    return buf[pos : pos + length].decode("utf-8"), pos + length


@dataclass(frozen=True, slots=True)
class ControlRecord:
    """Base class for 2PC control records (prepare / decision)."""

    TAG: ClassVar[int] = 0

    txn_id: int

    def _payload(self) -> bytes:
        raise NotImplementedError

    def encode(self) -> bytes:
        return _CONTROL_HEADER.pack(self.TAG, self.txn_id) + self._payload()

    @property
    def size_bytes(self) -> int:
        return _CONTROL_HEADER.size + len(self._payload())


@_register_control
@dataclass(frozen=True, slots=True)
class TxnPrepare(ControlRecord):
    """A participant's promise: the branch's REDO chain is stable and its
    locks are held until the coordinator's verdict arrives.

    Carries everything restart needs to resolve the branch without the
    coordinator process: the global transaction id, this branch's shard,
    the coordinator shard (whose stable decision table holds the
    verdict), and the full participant set.
    """

    TAG: ClassVar[int] = PREPARE_TAG

    gtid: str
    shard: int
    coordinator: int
    participants: tuple[int, ...]

    def _payload(self) -> bytes:
        body = _encode_str(self.gtid)
        body += _U16.pack(self.shard) + _U16.pack(self.coordinator)
        body += _U16.pack(len(self.participants))
        for sid in self.participants:
            body += _U16.pack(sid)
        return body

    @classmethod
    def _decode(cls, txn_id: int, buf: bytes, pos: int):
        gtid, pos = _decode_str(buf, pos)
        (shard,) = _U16.unpack_from(buf, pos)
        pos += _U16.size
        (coordinator,) = _U16.unpack_from(buf, pos)
        pos += _U16.size
        (count,) = _U16.unpack_from(buf, pos)
        pos += _U16.size
        participants = []
        for _ in range(count):
            (sid,) = _U16.unpack_from(buf, pos)
            pos += _U16.size
            participants.append(sid)
        return cls(txn_id, gtid, shard, coordinator, tuple(participants)), pos


@_register_control
@dataclass(frozen=True, slots=True)
class TxnDecision(ControlRecord):
    """The coordinator's logged verdict for one global transaction.

    Presumed abort: only COMMIT decisions are ever logged — an absent
    decision *is* the abort verdict — but the record format carries the
    verdict explicitly so the decision table stays self-describing.
    """

    TAG: ClassVar[int] = DECISION_TAG

    gtid: str
    verdict: str
    participants: tuple[int, ...]

    def _payload(self) -> bytes:
        body = _encode_str(self.gtid) + _encode_str(self.verdict)
        body += _U16.pack(len(self.participants))
        for sid in self.participants:
            body += _U16.pack(sid)
        return body

    @classmethod
    def _decode(cls, txn_id: int, buf: bytes, pos: int):
        gtid, pos = _decode_str(buf, pos)
        verdict, pos = _decode_str(buf, pos)
        (count,) = _U16.unpack_from(buf, pos)
        pos += _U16.size
        participants = []
        for _ in range(count):
            (sid,) = _U16.unpack_from(buf, pos)
            pos += _U16.size
            participants.append(sid)
        return cls(txn_id, gtid, verdict, tuple(participants)), pos


@_register_control
@dataclass(frozen=True, slots=True)
class TxnCommand(ControlRecord):
    """A command-logged transaction: re-execute the script, don't patch bytes.

    Carries everything replay needs — the registered script's name and
    version (schema-drift fence), its JSON-encoded arguments, and the
    declared relation list the replay planner partitions batches by.
    ``csn`` is the command sequence number the SLB assigned at commit;
    the matching :class:`CommandBarrier` records carry the same number.

    Control record, so it never enters the bin-sort pipeline: it lives in
    the SLB's stable command log until a settlement sweep's checkpoint
    images cover its effects.
    """

    TAG: ClassVar[int] = COMMAND_TAG

    csn: int
    name: str
    version: str
    args: bytes
    relations: tuple[str, ...]

    def _payload(self) -> bytes:
        body = _U32.pack(self.csn)
        body += _encode_str(self.name) + _encode_str(self.version)
        body += _encode_blob(self.args)
        body += _U16.pack(len(self.relations))
        for relation in self.relations:
            body += _encode_str(relation)
        return body

    @classmethod
    def _decode(cls, txn_id: int, buf: bytes, pos: int):
        (csn,) = _U32.unpack_from(buf, pos)
        pos += _U32.size
        name, pos = _decode_str(buf, pos)
        version, pos = _decode_str(buf, pos)
        args, pos = _decode_blob(buf, pos)
        (count,) = _U16.unpack_from(buf, pos)
        pos += _U16.size
        relations = []
        for _ in range(count):
            relation, pos = _decode_str(buf, pos)
            relations.append(relation)
        return cls(txn_id, csn, name, version, args, tuple(relations)), pos


def decode_control(buf: bytes, pos: int = 0) -> tuple[ControlRecord, int]:
    """Decode one control record starting at ``pos``."""
    try:
        tag, txn_id = _CONTROL_HEADER.unpack_from(buf, pos)
    except struct.error as exc:
        raise LogError(f"truncated control record header at {pos}") from exc
    cls = _CONTROL_REGISTRY.get(tag)
    if cls is None:
        raise LogError(f"unknown control record tag {tag} at {pos}")
    return cls._decode(txn_id, buf, pos + _CONTROL_HEADER.size)  # type: ignore[attr-defined]


# ------------------------------------------------------------------------------
# Compact (condensed) encoding — section 2.3.3 point 3
# ------------------------------------------------------------------------------
#
# "Redundant address information may be stripped from the log records
# before they are written to disk, thereby condensing the log."  Every
# record's payload begins with the owning partition's (segment, partition)
# pair — exactly what the log page's header already carries — so records
# on a dedicated (single-partition) page drop those eight bytes and
# recovery splices them back in from the header.  Mixed archive pages keep
# the full format (their records span partitions).

_ADDRESS_PREFIX = struct.Struct("<ii")
_STRIP_BYTES = _ADDRESS_PREFIX.size


def encode_record_compact(record: RedoRecord) -> bytes:
    """Full wire format minus the leading partition address of the payload."""
    full = record.encode()
    return full[: _HEADER.size] + full[_HEADER.size + _STRIP_BYTES :]


def decode_records_compact(buf: bytes, partition) -> list[RedoRecord]:
    """Decode a compact sequence, re-inserting ``partition``'s address."""
    prefix = _ADDRESS_PREFIX.pack(partition.segment, partition.partition)
    records = []
    pos = 0
    while pos < len(buf):
        # rebuild enough full-format bytes to decode one record
        chunk = buf[pos : pos + _HEADER.size] + prefix + buf[pos + _HEADER.size :]
        record, consumed = decode_record(chunk, 0)
        records.append(record)
        pos += consumed - _STRIP_BYTES
    return records
