"""Volatile UNDO records.

UNDO log records live only in the volatile UNDO space (section 2.3.1):
they are never written to stable memory or disk, because uncommitted data
is never allowed to reach the stable disk database.  At commit the chain
is discarded; at abort it is applied in reverse order while main memory is
still intact.

Each record carries the *before* state needed to reverse one operation.
Index components hold physical before-images — safe because components
are two-phase locked until commit (section 2.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import EntityAddress, PartitionAddress
from repro.storage.memory_manager import MemoryManager


@dataclass(frozen=True, slots=True)
class UndoRecord:
    """Base class for UNDO records."""

    def apply(self, memory: MemoryManager) -> None:
        raise NotImplementedError

    @property
    def size_bytes(self) -> int:
        """Approximate volatile-space charge for this record."""
        return 24


@dataclass(frozen=True, slots=True)
class UndoTupleInsert(UndoRecord):
    address: EntityAddress

    def apply(self, memory: MemoryManager) -> None:
        memory.partition(self.address.partition_address).delete(self.address.offset)


@dataclass(frozen=True, slots=True)
class UndoTupleUpdate(UndoRecord):
    address: EntityAddress
    before: bytes

    def apply(self, memory: MemoryManager) -> None:
        memory.partition(self.address.partition_address).update(
            self.address.offset, self.before
        )

    @property
    def size_bytes(self) -> int:
        return 24 + len(self.before)


@dataclass(frozen=True, slots=True)
class UndoTupleDelete(UndoRecord):
    address: EntityAddress
    before: bytes

    def apply(self, memory: MemoryManager) -> None:
        memory.partition(self.address.partition_address).insert_at(
            self.address.offset, self.before
        )

    @property
    def size_bytes(self) -> int:
        return 24 + len(self.before)


@dataclass(frozen=True, slots=True)
class UndoFieldPatch(UndoRecord):
    address: EntityAddress
    start: int
    before: bytes

    def apply(self, memory: MemoryManager) -> None:
        partition = memory.partition(self.address.partition_address)
        current = partition.read(self.address.offset)
        end = self.start + len(self.before)
        partition.update(
            self.address.offset,
            current[: self.start] + self.before + current[end:],
        )

    @property
    def size_bytes(self) -> int:
        return 24 + len(self.before)


@dataclass(frozen=True, slots=True)
class UndoHeapPut(UndoRecord):
    partition: PartitionAddress
    handle: int

    def apply(self, memory: MemoryManager) -> None:
        memory.partition(self.partition).heap.delete(self.handle)


@dataclass(frozen=True, slots=True)
class UndoHeapReplace(UndoRecord):
    partition: PartitionAddress
    handle: int
    before: bytes

    def apply(self, memory: MemoryManager) -> None:
        memory.partition(self.partition).heap.replace(self.handle, self.before)

    @property
    def size_bytes(self) -> int:
        return 24 + len(self.before)


@dataclass(frozen=True, slots=True)
class UndoHeapDelete(UndoRecord):
    partition: PartitionAddress
    handle: int
    before: bytes

    def apply(self, memory: MemoryManager) -> None:
        memory.partition(self.partition).heap.put_at(self.handle, self.before)

    @property
    def size_bytes(self) -> int:
        return 24 + len(self.before)


@dataclass(frozen=True, slots=True)
class UndoIndexNodeWrite(UndoRecord):
    """Restore an index component's before-image (or remove it if the
    component was created by the aborting transaction)."""

    address: EntityAddress
    before: bytes | None

    def apply(self, memory: MemoryManager) -> None:
        partition = memory.partition(self.address.partition_address)
        if self.before is None:
            if self.address.offset in partition:
                partition.delete(self.address.offset)
        elif self.address.offset in partition:
            partition.update(self.address.offset, self.before)
        else:
            partition.insert_at(self.address.offset, self.before)

    @property
    def size_bytes(self) -> int:
        return 24 + (len(self.before) if self.before is not None else 0)


@dataclass(frozen=True, slots=True)
class UndoIndexNodeFree(UndoRecord):
    """Reinstate an index component freed by the aborting transaction."""

    address: EntityAddress
    before: bytes

    def apply(self, memory: MemoryManager) -> None:
        memory.partition(self.address.partition_address).insert_at(
            self.address.offset, self.before
        )

    @property
    def size_bytes(self) -> int:
        return 24 + len(self.before)
