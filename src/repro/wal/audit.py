"""The audit trail log.

Section 2.3.2: "The logging component manages two logs: one log holds
regular audit trail data such as the contents of the message that
initiates the transaction, time of day, user data, etc., and the other
holds the REDO/UNDO information for the transaction.  The audit trail
log is managed in a manner described by DeWitt et al. and uses stable
memory."

Audit entries are appended to a stable-memory buffer at transaction
begin/commit/abort and flushed to the log disk in page-sized batches.
They are *not* used for database recovery — they answer "who did what
when" — so the flush is lazy and the recovery path only ever preserves
them (stable memory and disk both survive crashes).
"""

from __future__ import annotations

import json
import struct
import threading
from dataclasses import dataclass

from repro.common.errors import LogError
from repro.sim.stable_memory import StableMemory
from repro.wal.log_disk import LogDisk

#: Segment marker distinguishing audit pages from REDO/archive pages.
AUDIT_SEGMENT = -2

_ENTRY_HEADER = struct.Struct("<I")


@dataclass(frozen=True)
class AuditEntry:
    """One audit record: what started/finished, when, on whose behalf."""

    txn_id: int
    event: str  # "begin" | "commit" | "abort" | application-defined
    timestamp: float  # simulated seconds
    user_data: str = ""

    def encode(self) -> bytes:
        body = json.dumps(
            {
                "txn": self.txn_id,
                "event": self.event,
                "at": self.timestamp,
                "user": self.user_data,
            },
            sort_keys=True,
        ).encode("utf-8")
        return _ENTRY_HEADER.pack(len(body)) + body

    @classmethod
    def decode(cls, buf: bytes, pos: int) -> tuple["AuditEntry", int]:
        (length,) = _ENTRY_HEADER.unpack_from(buf, pos)
        pos += _ENTRY_HEADER.size
        doc = json.loads(buf[pos : pos + length].decode("utf-8"))
        entry = cls(doc["txn"], doc["event"], doc["at"], doc["user"])
        return entry, pos + length

    @property
    def size_bytes(self) -> int:
        return len(self.encode())


class AuditLog:
    """Stable-memory audit buffer with lazy page-sized disk flushes.

    The buffer lives in stable memory, so committed audit entries survive
    a crash even before they reach the disk.

    Appends and flushes serialise on one internal mutex: concurrent
    scheduler workers record begin/commit/abort entries from any thread,
    and the buffer-append + byte-count + page-flush step must be atomic.
    Lock order: audit mutex → log-disk mutex (flush appends a page while
    holding it); nothing else nests inside.
    """

    STABLE_KEY = "audit-buffer"

    def __init__(self, stable: StableMemory, log_disk: LogDisk, page_size: int):
        if page_size <= 0:
            raise LogError("audit page size must be positive")
        self.log_disk = log_disk
        self.page_size = page_size
        self.entries_written = 0
        self.pages_flushed = 0
        self._mutex = threading.RLock()
        if self.STABLE_KEY in stable:
            self._buffer: list[AuditEntry] = stable.load(self.STABLE_KEY)
        else:
            self._buffer = []
            stable.allocate(self.STABLE_KEY, page_size * 2, self._buffer)
        self._buffer_bytes = sum(e.size_bytes for e in self._buffer)
        #: LSNs of flushed audit pages, newest last (kept in stable memory
        #: alongside the buffer so the trail remains discoverable).
        self._page_lsns_key = "audit-page-lsns"
        if self._page_lsns_key in stable:
            self._page_lsns: list[int] = stable.load(self._page_lsns_key)
        else:
            self._page_lsns = []
            stable.allocate(self._page_lsns_key, 4096, self._page_lsns)

    # -- writing ---------------------------------------------------------------

    def record(
        self, txn_id: int, event: str, timestamp: float, user_data: str = ""
    ) -> AuditEntry:
        """Append one entry; flushes a page when the buffer fills."""
        entry = AuditEntry(txn_id, event, timestamp, user_data)
        with self._mutex:
            self._buffer.append(entry)
            self._buffer_bytes += entry.size_bytes
            self.entries_written += 1
            if self._buffer_bytes >= self.page_size:
                self.flush()
        return entry

    def flush(self) -> int | None:
        """Write the buffered entries to the log disk as one audit page.

        Returns the page's LSN, or None when the buffer was empty.
        """
        with self._mutex:
            if not self._buffer:
                return None
            body = b"".join(entry.encode() for entry in self._buffer)
            lsn = self.log_disk.append_opaque_page(AUDIT_SEGMENT, body)
            self._page_lsns.append(lsn)
            self._buffer.clear()
            self._buffer_bytes = 0
            self.pages_flushed += 1
            return lsn

    # -- reading -----------------------------------------------------------------

    def pending_entries(self) -> list[AuditEntry]:
        """Entries still in stable memory, not yet flushed."""
        with self._mutex:
            return list(self._buffer)

    def read_page(self, lsn: int) -> list[AuditEntry]:
        body = self.log_disk.read_opaque_page(lsn, AUDIT_SEGMENT)
        entries = []
        cursor = 0
        while cursor < len(body):
            entry, cursor = AuditEntry.decode(body, cursor)
            entries.append(entry)
        return entries

    def trail(self) -> list[AuditEntry]:
        """The full audit trail: flushed pages (oldest first) + buffer."""
        with self._mutex:
            lsns = list(self._page_lsns)
            buffered = list(self._buffer)
        entries: list[AuditEntry] = []
        for lsn in lsns:
            entries.extend(self.read_page(lsn))
        entries.extend(buffered)
        return entries

    def entries_for(self, txn_id: int) -> list[AuditEntry]:
        return [entry for entry in self.trail() if entry.txn_id == txn_id]
