"""Section 3.2 — logging capacity of the recovery component.

The recovery CPU's time splits three ways: sorting records from the
Stable Log Buffer into Stable Log Tail bins, initiating disk writes for
full bin pages, and signalling checkpoints.  The paper folds these into
two derived quantities:

``I_page_write`` — instructions per bin-page write::

    I_page_write = I_write_init + I_page_alloc + I_process_LSN
                   + I_checkpoint / (N_update * S_log_record / S_log_page)

(the checkpoint signal is amortised over the pages a partition
accumulates before its update-count checkpoint), and

``I_record_sort`` — instructions per record sorted::

    I_record_sort = I_record_lookup + I_page_check
                    + I_copy_fixed + I_copy_add' * S_log_record
                    + I_page_update
                    + I_page_write * S_log_record / S_log_page

where ``I_copy_add'`` is the per-byte copy cost scaled by the stable-RAM
slowdown (the copy reads the SLB and writes the SLT, both stable; the
scan of the paper is unreadable at exactly this point, and this
reconstruction reproduces the headline "approximately 4,000
transactions per second at four log records per transaction").

Throughput follows directly::

    R_records_logged = P_recovery / I_record_sort
    R_bytes_logged   = R_records_logged * S_log_record
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import AnalysisParameters


@dataclass(frozen=True)
class LoggingModel:
    """Closed-form logging-capacity model (defaults = Table 2)."""

    params: AnalysisParameters = field(default_factory=AnalysisParameters)
    log_record_size: int = 24
    log_page_size: int = 8 * 1024
    update_count: int = 1000

    # -- derived instruction counts (the "(Calculated)" rows) ----------------------

    @property
    def pages_per_checkpoint(self) -> float:
        """Bin pages a partition fills before its update-count checkpoint."""
        return self.update_count * self.log_record_size / self.log_page_size

    @property
    def instructions_per_page_write(self) -> float:
        """``I_page_write``: cost of writing one SLT page to the log disk."""
        p = self.params
        return (
            p.i_write_init
            + p.i_page_alloc
            + p.i_process_lsn
            + p.i_checkpoint / self.pages_per_checkpoint
        )

    @property
    def instructions_per_record(self) -> float:
        """``I_record_sort``: cost of sorting one record into its bin."""
        p = self.params
        per_byte_copy = p.i_copy_add * p.stable_memory_slowdown
        return (
            p.i_record_lookup
            + p.i_page_check
            + p.i_copy_fixed
            + per_byte_copy * self.log_record_size
            + p.i_page_update
            + self.instructions_per_page_write
            * self.log_record_size
            / self.log_page_size
        )

    # -- throughput -------------------------------------------------------------------

    @property
    def records_per_second(self) -> float:
        """``R_records_logged``: maximum sorting rate."""
        return self.params.instructions_per_second / self.instructions_per_record

    @property
    def bytes_per_second(self) -> float:
        """``R_bytes_logged``."""
        return self.records_per_second * self.log_record_size

    def transactions_per_second(self, records_per_transaction: float) -> float:
        """Graph 2: the transaction rate the logging component sustains."""
        if records_per_transaction <= 0:
            raise ValueError("records_per_transaction must be positive")
        return self.records_per_second / records_per_transaction

    # -- sweeps (the graphs) ---------------------------------------------------------------

    def with_record_size(self, size: int) -> "LoggingModel":
        return LoggingModel(self.params, size, self.log_page_size, self.update_count)

    def with_page_size(self, size: int) -> "LoggingModel":
        return LoggingModel(self.params, self.log_record_size, size, self.update_count)

    @staticmethod
    def graph1_series(
        record_sizes: list[int],
        page_sizes: list[int],
        params: AnalysisParameters | None = None,
    ) -> dict[int, list[tuple[int, float]]]:
        """Graph 1: records/second vs record size, one series per page size."""
        params = params if params is not None else AnalysisParameters()
        series: dict[int, list[tuple[int, float]]] = {}
        for page_size in page_sizes:
            points = []
            for record_size in record_sizes:
                model = LoggingModel(params, record_size, page_size)
                points.append((record_size, model.records_per_second))
            series[page_size] = points
        return series

    @staticmethod
    def graph2_series(
        record_sizes: list[int],
        records_per_transaction: list[int],
        params: AnalysisParameters | None = None,
    ) -> dict[int, list[tuple[int, float]]]:
        """Graph 2: transactions/second vs record size, one series per
        log-records-per-transaction value."""
        params = params if params is not None else AnalysisParameters()
        series: dict[int, list[tuple[int, float]]] = {}
        for rpt in records_per_transaction:
            points = []
            for record_size in record_sizes:
                model = LoggingModel(params, record_size)
                points.append((record_size, model.transactions_per_second(rpt)))
            series[rpt] = points
        return series
