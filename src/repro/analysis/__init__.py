"""The paper's Section 3 performance analysis, as executable models.

* :mod:`repro.analysis.params` — Table 1/2: variable conventions and
  parameter values, including the derived "(Calculated)" rows.
* :mod:`repro.analysis.logging_model` — section 3.2: logging capacity
  (Graphs 1 and 2).
* :mod:`repro.analysis.checkpoint_model` — section 3.3: checkpoint
  frequency and overhead (Graph 3).
* :mod:`repro.analysis.recovery_model` — section 3.4: partition-level vs
  database-level post-crash recovery.
"""

from repro.analysis.logging_model import LoggingModel
from repro.analysis.checkpoint_model import CheckpointModel
from repro.analysis.recovery_model import RecoveryModel
from repro.analysis.params import table1_rows, table2_rows
from repro.analysis.sizing import SizingModel, WorkloadProfile

__all__ = [
    "CheckpointModel",
    "LoggingModel",
    "RecoveryModel",
    "SizingModel",
    "WorkloadProfile",
    "table1_rows",
    "table2_rows",
]
