"""Section 3.4 — partition-level versus database-level recovery.

A partition's recovery time is bounded by reading its checkpoint image,
reading all of its log pages, and applying them.  Image and log live on
different disks, so those reads overlap; with a directory at least as
large as the page count, log pages are read in write order and records
from one page are applied while the next page streams in — leaving the
pipeline bound by ``max(image read, log read chain)`` plus the apply of
the final page.

Database-level recovery is "partition-level recovery with one very large
partition": nothing runs until *every* partition image and *all* log
pages are in.  The quantities the benchmarks report:

* **time to first transaction** — partition-level: recover just the
  partitions the first transaction touches; database-level: recover
  everything.
* **total restore time** — comparable for both (same bytes moved); the
  partition approach adds per-partition seeks, the database approach
  streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import DiskParameters


@dataclass(frozen=True)
class RecoveryModel:
    """Closed-form post-crash recovery timing."""

    checkpoint_disk: DiskParameters = field(default_factory=DiskParameters)
    log_disk: DiskParameters = field(default_factory=DiskParameters)
    partition_size: int = 48 * 1024
    log_page_size: int = 8 * 1024
    directory_size: int = 8
    #: Seconds to apply one page of log records to a memory-resident
    #: partition (pure CPU; well under a page read, as the paper assumes).
    apply_seconds_per_page: float = 0.002

    # -- single partition -----------------------------------------------------------

    def backward_reads(self, log_pages: int) -> int:
        """Directory-walk reads needed before forward streaming can start
        (about ``#pages / N``, section 2.5.1)."""
        if log_pages <= self.directory_size:
            return 0
        # one read per full directory group beyond the current one
        return (log_pages - 1) // self.directory_size

    def partition_recovery_seconds(self, log_pages: int) -> float:
        """Recover one partition: image read overlapped with log reads."""
        image_seconds = self.checkpoint_disk.track_read_time(self.partition_size)
        walk = self.backward_reads(log_pages)
        page_read = self.log_disk.page_read_time(self.log_page_size, sibling=True)
        log_seconds = (walk + log_pages) * page_read
        # log application overlaps the next page's read; only the final
        # page's apply is exposed
        tail_apply = self.apply_seconds_per_page if log_pages else 0.0
        return max(image_seconds, log_seconds) + tail_apply

    # -- relation / database level ------------------------------------------------------

    def relation_recovery_seconds(self, pages_per_partition: list[int]) -> float:
        """Upper bound: the sum of its partitions' recovery times."""
        return sum(self.partition_recovery_seconds(p) for p in pages_per_partition)

    def database_recovery_seconds(
        self, partitions: int, total_log_pages: int
    ) -> float:
        """Full reload: stream every image, read every log page, apply all.

        Sequential images on the checkpoint disk pay one seek then stream
        at track rate; the log is read page-wise in parallel on its own
        disk.
        """
        image_seconds = (
            self.checkpoint_disk.avg_seek_s
            + self.checkpoint_disk.rotational_latency_s
            + partitions * self.partition_size / self.checkpoint_disk.track_transfer_rate
        )
        page_read = self.log_disk.page_read_time(self.log_page_size, sibling=True)
        log_seconds = total_log_pages * page_read
        return max(image_seconds, log_seconds) + (
            self.apply_seconds_per_page if total_log_pages else 0.0
        )

    def time_to_first_transaction(
        self,
        needed_partitions: int,
        pages_per_needed_partition: int,
        total_partitions: int,
        total_log_pages: int,
        *,
        partition_level: bool,
    ) -> float:
        """Restart latency for a transaction touching a working set.

        Partition-level recovery restores only the needed partitions;
        database-level recovery restores everything first.
        """
        if partition_level:
            return self.relation_recovery_seconds(
                [pages_per_needed_partition] * needed_partitions
            )
        return self.database_recovery_seconds(total_partitions, total_log_pages)
