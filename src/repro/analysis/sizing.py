"""Sizing the stable memories and the log window.

Section 2.3.3 gives the Stable Log Tail budget directly: "The amount of
stable reliable memory required for the Stable Log Tail depends on the
total number of partitions in the database and the number of active
partitions.  Each partition uses a small amount — on the order of 50
bytes, and each active partition requires a log page buffer — on the
order of 2 to 16 kilobytes."

Section 3.3 gives the log window floor: "there should be at least enough
pages in the log window to hold N_update log records for every active
partition."

The Stable Log Buffer must hold the REDO chains of every in-flight
transaction plus the committed backlog the recovery CPU has not yet
sorted; we size it from the arrival rate and the drain rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.logging_model import LoggingModel
from repro.common.config import SystemConfig
from repro.wal.slt import INFO_BLOCK_BYTES


@dataclass(frozen=True)
class WorkloadProfile:
    """The knobs a capacity planner knows about the workload."""

    total_partitions: int
    active_partitions: int
    transactions_per_second: float
    records_per_transaction: float = 4.0
    log_record_size: int = 24
    #: Transactions concurrently holding open (uncommitted) REDO chains.
    concurrent_transactions: int = 10

    @property
    def records_per_second(self) -> float:
        return self.transactions_per_second * self.records_per_transaction


@dataclass(frozen=True)
class SizingModel:
    """Derives stable-memory and log-window requirements for a workload."""

    config: SystemConfig = field(default_factory=SystemConfig)

    # -- Stable Log Tail -----------------------------------------------------------

    def slt_bytes(self, profile: WorkloadProfile) -> int:
        """Section 2.3.3's estimate: permanent info blocks for every
        partition plus a page buffer per active partition."""
        return (
            profile.total_partitions * INFO_BLOCK_BYTES
            + profile.active_partitions * self.config.log_page_size
        )

    # -- Stable Log Buffer ----------------------------------------------------------

    def slb_bytes(self, profile: WorkloadProfile, *, headroom: float = 2.0) -> int:
        """In-flight chains plus one drain interval of committed backlog.

        The recovery CPU drains at ``R_records_logged``; the main CPU
        produces at the workload rate.  With production below capacity the
        backlog is bounded by one scheduling interval's worth of records;
        ``headroom`` doubles it by default.
        """
        per_txn_bytes = (
            profile.records_per_transaction * profile.log_record_size
        )
        in_flight = profile.concurrent_transactions * max(
            per_txn_bytes, self.config.log_block_size
        )
        model = LoggingModel(
            self.config.analysis,
            profile.log_record_size,
            self.config.log_page_size,
            self.config.update_count_threshold,
        )
        drain_rate = model.records_per_second
        backlog_records = min(profile.records_per_second, drain_rate)
        backlog = backlog_records * profile.log_record_size
        return int(headroom * (in_flight + backlog))

    def slb_saturated(self, profile: WorkloadProfile) -> bool:
        """True when the workload produces records faster than the
        recovery CPU can sort them — the system-level bottleneck check of
        section 3.2."""
        model = LoggingModel(
            self.config.analysis,
            profile.log_record_size,
            self.config.log_page_size,
            self.config.update_count_threshold,
        )
        return profile.records_per_second > model.records_per_second

    # -- log window --------------------------------------------------------------------

    def minimum_log_window_pages(self, profile: WorkloadProfile) -> int:
        """Section 3.3's floor: N_update records of window per active
        partition, so update-count checkpoints can win over age."""
        pages_per_partition = (
            self.config.update_count_threshold
            * profile.log_record_size
            / self.config.log_page_size
        )
        return int(profile.active_partitions * pages_per_partition) + 1

    # -- the full recommendation ------------------------------------------------------------

    def recommend(self, profile: WorkloadProfile) -> dict:
        """One-call capacity plan, with the saturation warning."""
        return {
            "slt_bytes": self.slt_bytes(profile),
            "slb_bytes": self.slb_bytes(profile),
            "log_window_pages": self.minimum_log_window_pages(profile),
            "recovery_cpu_saturated": self.slb_saturated(profile),
        }
