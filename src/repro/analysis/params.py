"""Tables 1 and 2: parameter conventions, values, and the derived rows.

``table2_rows`` regenerates the paper's Table 2 with the "(Calculated)"
entries filled in from :class:`~repro.analysis.logging_model.LoggingModel`
and :class:`~repro.analysis.checkpoint_model.CheckpointModel`, so the
benchmark harness can print the table exactly as the paper lays it out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.checkpoint_model import CheckpointModel
from repro.analysis.logging_model import LoggingModel
from repro.common.config import AnalysisParameters


@dataclass(frozen=True)
class TableRow:
    name: str
    explanation: str
    value: float
    units: str
    calculated: bool = False

    def formatted(self) -> str:
        value = f"{self.value:,.2f}".rstrip("0").rstrip(".")
        marker = " (Calculated)" if self.calculated else ""
        return f"{self.name:<22} {value:>14} {self.units}{marker}"


def table1_rows() -> list[tuple[str, str]]:
    """Table 1: variable naming conventions."""
    return [
        ("I", "instruction count of an operation"),
        ("S", "size, in bytes"),
        ("N", "a count of objects or operations"),
        ("R", "a rate (per second)"),
        ("P", "processing power (MIPS)"),
    ]


def table2_rows(
    params: AnalysisParameters | None = None,
    log_record_size: int = 24,
    log_page_size: int = 8 * 1024,
    partition_size: int = 48 * 1024,
    update_count: int = 1000,
) -> list[TableRow]:
    """Table 2 with the calculated rows evaluated."""
    params = params if params is not None else AnalysisParameters()
    logging = LoggingModel(params, log_record_size, log_page_size, update_count)
    checkpoints = CheckpointModel(params, log_record_size, log_page_size, update_count)
    records_per_second = logging.records_per_second
    return [
        TableRow(
            "I_record_lookup",
            "Read one log record and determine index of proper log bin",
            params.i_record_lookup,
            "Instructions / Record",
        ),
        TableRow(
            "I_copy_fixed",
            "Startup cost of copying a string of bytes",
            params.i_copy_fixed,
            "Instructions / Copy",
        ),
        TableRow(
            "I_copy_add",
            "Additional cost per byte of copying a string of bytes",
            params.i_copy_add,
            "Instructions / Byte",
        ),
        TableRow(
            "I_write_init",
            "Cost of initiating a disk write of a full log bin page",
            params.i_write_init,
            "Instructions / Page Write",
        ),
        TableRow(
            "I_page_alloc",
            "Cost of allocating a new log bin page and releasing the old one",
            params.i_page_alloc,
            "Instructions / Page Write",
        ),
        TableRow(
            "I_page_update",
            "Cost of updating the log bin page information",
            params.i_page_update,
            "Instructions / Record",
        ),
        TableRow(
            "I_page_check",
            "Cost of checking the existence of a log bin page",
            params.i_page_check,
            "Instructions / Log Record",
        ),
        TableRow(
            "I_process_LSN",
            "Cost of maintaining the LSN count and checking for checkpoints",
            params.i_process_lsn,
            "Instructions / Page Write",
        ),
        TableRow(
            "I_checkpoint",
            "Cost of signaling the main CPU to start a checkpoint transaction",
            params.i_checkpoint,
            "Instructions / Checkpoint",
        ),
        TableRow(
            "I_record_sort",
            "Total cost of the record sorting process",
            logging.instructions_per_record,
            "Instructions / Record",
            calculated=True,
        ),
        TableRow(
            "I_page_write",
            "Total cost of writing a page from the SLT to the log disk",
            logging.instructions_per_page_write,
            "Instructions / Page",
            calculated=True,
        ),
        TableRow(
            "S_log_record",
            "Average size of a log record",
            log_record_size,
            "Bytes / Record",
        ),
        TableRow(
            "S_log_page", "Size of a log page", log_page_size, "Bytes / Page"
        ),
        TableRow(
            "S_partition", "Size of a partition", partition_size, "Bytes / Partition"
        ),
        TableRow(
            "N_update",
            "Log records a partition accumulates before a checkpoint",
            update_count,
            "Log Records / Partition",
        ),
        TableRow(
            "N_log_pages",
            "Average number of log pages for a partition",
            logging.pages_per_checkpoint,
            "Log Pages / Partition",
            calculated=True,
        ),
        TableRow(
            "R_bytes_logged",
            "Byte rate of the logging component",
            logging.bytes_per_second,
            "Bytes / Second",
            calculated=True,
        ),
        TableRow(
            "R_records_logged",
            "Record rate of the logging component",
            records_per_second,
            "Log Records / Second",
            calculated=True,
        ),
        TableRow(
            "R_checkpoint",
            "Frequency of checkpoints (best case: all by update count)",
            checkpoints.best_case_rate(records_per_second),
            "Checkpoints / Second",
            calculated=True,
        ),
        TableRow(
            "P_recovery",
            "MIPS power of the recovery CPU",
            params.p_recovery_mips,
            "Million Instructions / Second",
        ),
    ]
