"""Section 3.3 — checkpoint frequency and overhead.

With an infinite log window every checkpoint is triggered by update
count, amortised over ``N_update`` updates (the best case)::

    R_checkpoint = R_records_logged / N_update

With a finite window some partitions are checkpointed *because of age*
before accumulating ``N_update`` records.  The paper's comparison point
assumes the worst for those: an aged partition has only a single page of
log records, i.e. ``S_log_page / S_log_record`` updates::

    R_checkpoint = R_records_logged * S_log_record / S_log_page

Mixing the two trigger populations with fractions ``f_count + f_age = 1``::

    R_checkpoint = R_records * (f_count / N_update
                                + f_age * S_log_record / S_log_page)

The overhead measure of section 3.3 treats a checkpoint transaction as
comparable to a debit/credit transaction, so the checkpoint share of the
total transaction load is ``R_checkpoint / (R_txn + R_checkpoint)`` —
about 1.5 % at 60 % update-count triggers and 10 records per transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import AnalysisParameters


@dataclass(frozen=True)
class CheckpointModel:
    """Closed-form checkpoint-frequency model (defaults = Table 2)."""

    params: AnalysisParameters = field(default_factory=AnalysisParameters)
    log_record_size: int = 24
    log_page_size: int = 8 * 1024
    update_count: int = 1000

    def best_case_rate(self, records_per_second: float) -> float:
        """All checkpoints triggered by update count (infinite window)."""
        return records_per_second / self.update_count

    def worst_case_rate(self, records_per_second: float) -> float:
        """All checkpoints triggered by age with one page of records."""
        return records_per_second * self.log_record_size / self.log_page_size

    def rate(
        self,
        records_per_second: float,
        update_count_fraction: float,
    ) -> float:
        """Checkpoints per second for a trigger mix.

        ``update_count_fraction`` is the share of checkpoints triggered by
        update count; the rest are age-triggered at the worst case.
        """
        if not 0.0 <= update_count_fraction <= 1.0:
            raise ValueError("update_count_fraction must be in [0, 1]")
        age_fraction = 1.0 - update_count_fraction
        return records_per_second * (
            update_count_fraction / self.update_count
            + age_fraction * self.log_record_size / self.log_page_size
        )

    def overhead_fraction(
        self,
        transactions_per_second: float,
        records_per_transaction: float,
        update_count_fraction: float,
    ) -> float:
        """Checkpoint transactions as a fraction of all transactions."""
        if transactions_per_second <= 0:
            raise ValueError("transactions_per_second must be positive")
        records_per_second = transactions_per_second * records_per_transaction
        checkpoints = self.rate(records_per_second, update_count_fraction)
        return checkpoints / (transactions_per_second + checkpoints)

    def minimum_log_window_pages(self, active_partitions: int) -> float:
        """Section 3.3: 'there should be at least enough pages in the log
        window to hold N_update log records for every active partition'."""
        pages_per_partition = (
            self.update_count * self.log_record_size / self.log_page_size
        )
        return active_partitions * pages_per_partition

    @staticmethod
    def graph3_series(
        logging_rates: list[float],
        scenarios: list[tuple[int, float]],
        params: AnalysisParameters | None = None,
        log_record_size: int = 24,
        log_page_size: int = 8 * 1024,
    ) -> dict[tuple[int, float], list[tuple[float, float]]]:
        """Graph 3: checkpoints/second vs logging rate.

        ``scenarios`` are ``(update_count, update_count_fraction)`` pairs;
        one series per scenario.
        """
        params = params if params is not None else AnalysisParameters()
        series: dict[tuple[int, float], list[tuple[float, float]]] = {}
        for update_count, fraction in scenarios:
            model = CheckpointModel(params, log_record_size, log_page_size, update_count)
            series[(update_count, fraction)] = [
                (rate, model.rate(rate, fraction)) for rate in logging_rates
            ]
        return series
